//===--- SynthTest.cpp - Tests for the encoder and synthesizer ------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "api/DependencyGraph.h"
#include "rustsim/Checker.h"
#include "synth/SeenPrograms.h"
#include "synth/Synthesizer.h"
#include "types/CompatCache.h"
#include "types/TypeParser.h"

#include <gtest/gtest.h>

#include <map>

using namespace syrust;
using namespace syrust::api;
using namespace syrust::program;
using namespace syrust::rustsim;
using namespace syrust::synth;
using namespace syrust::types;

namespace {

class SynthFixture : public ::testing::Test {
protected:
  TypeArena Arena;
  TypeParser Parser{Arena, {"T"}};
  TraitEnv Traits{Arena};
  ApiDatabase Db;
  ApiId LetMut = ApiIdInvalid, Borrow = ApiIdInvalid,
        BorrowMut = ApiIdInvalid;

  const Type *parse(const std::string &S) {
    const Type *T = Parser.parse(S);
    EXPECT_NE(T, nullptr) << Parser.error();
    return T;
  }

  ApiId addApi(const std::string &Name, std::vector<std::string> Ins,
               const std::string &Out) {
    ApiSig Sig;
    Sig.Name = Name;
    for (const auto &I : Ins)
      Sig.Inputs.push_back(parse(I));
    Sig.Output = parse(Out);
    return Db.add(std::move(Sig));
  }

  void addBuiltins() {
    auto B = addBuiltinApis(Db, Arena);
    LetMut = B[0];
    Borrow = B[1];
    BorrowMut = B[2];
  }

  std::vector<TemplateInput> vecTemplate() {
    return {{"s", parse("String")}, {"v", parse("Vec<String>")}};
  }
};

//===----------------------------------------------------------------------===//
// Basic enumeration
//===----------------------------------------------------------------------===//

TEST_F(SynthFixture, LengthOneEnumeratesExpectedPrograms) {
  // Only concrete APIs, no builtins: f(String) and g(Vec<String>).
  addApi("f", {"String"}, "usize");
  addApi("g", {"Vec<String>"}, "usize");
  Synthesizer Synth(Arena, Traits, Db, vecTemplate(), /*MaxLines=*/1);
  std::vector<std::string> Names;
  while (auto P = Synth.next()) {
    ASSERT_EQ(P->Stmts.size(), 1u);
    Names.push_back(Db.get(P->Stmts[0].Api).Name);
  }
  // Exactly two programs: f(s); and g(v);
  ASSERT_EQ(Names.size(), 2u);
  EXPECT_NE(std::find(Names.begin(), Names.end(), "f"), Names.end());
  EXPECT_NE(std::find(Names.begin(), Names.end(), "g"), Names.end());
}

TEST_F(SynthFixture, ArgumentWiringDistinguishesPrograms) {
  // h(String, Vec<String>) has exactly one wiring; k(usize, usize) with
  // two usize inputs has one var -> one wiring (same var twice, prim).
  addApi("h", {"String", "Vec<String>"}, "usize");
  Synthesizer Synth(Arena, Traits, Db, vecTemplate(), 1);
  int Count = 0;
  while (auto P = Synth.next()) {
    ++Count;
    EXPECT_EQ(P->Stmts[0].Args, (std::vector<VarId>{0, 1}));
  }
  EXPECT_EQ(Count, 1);
}

TEST_F(SynthFixture, ChainedCallUsesPriorOutput) {
  addApi("mk", {"String"}, "Token");
  addApi("use_token", {"Token"}, "usize");
  Synthesizer Synth(Arena, Traits, Db, vecTemplate(), 2);
  bool SawChain = false;
  while (auto P = Synth.next()) {
    if (P->Stmts.size() == 2 &&
        Db.get(P->Stmts[0].Api).Name == "mk" &&
        Db.get(P->Stmts[1].Api).Name == "use_token") {
      EXPECT_EQ(P->Stmts[1].Args[0], 2); // Output of line 0.
      SawChain = true;
    }
  }
  EXPECT_TRUE(SawChain);
}

TEST_F(SynthFixture, MoveSemanticsPreventDoubleUse) {
  // Token is owned non-Copy; it can only be consumed once.
  addApi("mk", {"String"}, "Token");
  addApi("use_token", {"Token"}, "usize");
  Synthesizer Synth(Arena, Traits, Db, vecTemplate(), 3);
  while (auto P = Synth.next()) {
    // Count consuming uses per variable; no owned var may be consumed
    // twice.
    std::map<VarId, int> Consumptions;
    for (const Stmt &S : P->Stmts)
      for (VarId A : S.Args)
        Consumptions[A] += 1;
    // `s` is String (non-Copy): at most one use.
    EXPECT_LE(Consumptions[0], 1) << P->render(Db);
  }
}

TEST_F(SynthFixture, PolymorphicApiMatchesAllEligibleArgs) {
  addApi("id", {"T"}, "usize");
  Synthesizer Synth(Arena, Traits, Db, vecTemplate(), 1);
  int Count = 0;
  while (auto P = Synth.next())
    ++Count;
  // id(s) and id(v).
  EXPECT_EQ(Count, 2);
}

TEST_F(SynthFixture, CompatibleTypesConstraintEnforced) {
  // pair(T, T): (s, s) forbidden by Rule 4 (owned twice), (s, v) forbidden
  // by compatibility (T cannot be String and Vec<String>).
  addApi("pair", {"T", "T"}, "usize");
  Synthesizer Synth(Arena, Traits, Db, vecTemplate(), 1);
  int Count = 0;
  while (auto P = Synth.next())
    ++Count;
  EXPECT_EQ(Count, 0);
}

TEST_F(SynthFixture, CompatibleTypesAllowsTwoDistinctSameTypeVars) {
  // With two String inputs, pair(T, T) wires (s1, s2) and (s2, s1).
  addApi("pair", {"T", "T"}, "usize");
  std::vector<TemplateInput> Ins{{"s1", parse("String")},
                                 {"s2", parse("String")}};
  Synthesizer Synth(Arena, Traits, Db, Ins, 1);
  int Count = 0;
  while (auto P = Synth.next())
    ++Count;
  EXPECT_EQ(Count, 2);
}

//===----------------------------------------------------------------------===//
// Builtins and borrows
//===----------------------------------------------------------------------===//

TEST_F(SynthFixture, BorrowRequiresLaterUse) {
  // Redundancy rule 3: a reference that is never used is not synthesized.
  addBuiltins();
  Synthesizer Synth(Arena, Traits, Db, vecTemplate(), 1);
  while (auto P = Synth.next()) {
    EXPECT_NE(Db.get(P->Stmts[0].Api).Builtin, BuiltinKind::Borrow)
        << P->render(Db);
    EXPECT_NE(Db.get(P->Stmts[0].Api).Builtin, BuiltinKind::BorrowMut)
        << P->render(Db);
  }
}

TEST_F(SynthFixture, MutBorrowOnlyThroughLetMut) {
  addBuiltins();
  addApi("take_mut", {"&mut Vec<String>"}, "usize");
  Synthesizer Synth(Arena, Traits, Db, vecTemplate(), 3);
  bool SawMutChain = false;
  while (auto P = Synth.next()) {
    for (size_t I = 0; I < P->Stmts.size(); ++I) {
      const Stmt &S = P->Stmts[I];
      if (Db.get(S.Api).Builtin != BuiltinKind::BorrowMut)
        continue;
      VarId Target = S.Args[0];
      // Target must be the output of a let_mut line.
      ASSERT_GE(Target, 2) << P->render(Db);
      const Stmt &Def = P->Stmts[static_cast<size_t>(Target - 2)];
      EXPECT_EQ(Db.get(Def.Api).Builtin, BuiltinKind::LetMut)
          << P->render(Db);
      SawMutChain = true;
    }
  }
  EXPECT_TRUE(SawMutChain);
}

TEST_F(SynthFixture, DeclTypePredictionForBuiltins) {
  addBuiltins();
  addApi("take_ref", {"&Vec<String>"}, "usize");
  Synthesizer Synth(Arena, Traits, Db, vecTemplate(), 2);
  bool Saw = false;
  while (auto P = Synth.next()) {
    for (const Stmt &S : P->Stmts) {
      if (Db.get(S.Api).Builtin == BuiltinKind::Borrow &&
          S.Args[0] == 1) {
        EXPECT_EQ(S.DeclType, parse("&Vec<String>"));
        Saw = true;
      }
    }
  }
  EXPECT_TRUE(Saw);
}

//===----------------------------------------------------------------------===//
// Soundness: every emitted program compiles (the paper's <1% claim is
// exactly 0% when no trait bounds, quirks, or unresolved polymorphism are
// in play).
//===----------------------------------------------------------------------===//

class SoundnessTest : public SynthFixture,
                      public ::testing::WithParamInterface<int> {};

TEST_F(SynthFixture, AllEmittedProgramsPassTheChecker) {
  Traits.addDefaultPrimImpls();
  Traits.addImpl("Clone", Arena.named("String"));
  addBuiltins();
  addApi("Vec::push", {"&mut Vec<T>", "T"}, "()");
  addApi("Vec::pop", {"&mut Vec<T>"}, "Option<T>");
  addApi("Vec::len", {"&Vec<T>"}, "usize");
  addApi("Vec::into_raw_parts", {"Vec<T>"}, "(usize, usize, usize)");
  addApi("String::new_from", {"usize"}, "String");

  Checker Check(Arena, Traits);
  Synthesizer Synth(Arena, Traits, Db, vecTemplate(), 4);
  int Total = 0, Failed = 0, PolyErrors = 0;
  while (auto P = Synth.next()) {
    ++Total;
    CompileResult R = Check.check(*P, Db);
    if (!R.Success) {
      // The only acceptable rejections are polymorphism errors the
      // refinement loop exists to fix (e.g. Option<T> outputs that are
      // not yet concretized); ownership/lifetime/trait rejections would
      // mean the encoder is unsound.
      EXPECT_EQ(R.Diag.Category, ErrorCategory::Type)
          << P->render(Db) << R.Diag.Message;
      ++Failed;
      if (R.Diag.Detail == ErrorDetail::Polymorphism)
        ++PolyErrors;
    }
    if (Total > 4000)
      break;
  }
  EXPECT_GT(Total, 30);
  EXPECT_EQ(Failed, PolyErrors) << "non-polymorphism rejections present";
}

TEST_F(SynthFixture, SemanticAwareOffProducesOwnershipErrors) {
  // The RQ2 ablation: without Section 4.4 constraints the checker must
  // reject a substantial share with Lifetime&Ownership errors.
  Traits.addDefaultPrimImpls();
  addBuiltins();
  addApi("Vec::push", {"&mut Vec<T>", "T"}, "()");
  addApi("Vec::into_raw_parts", {"Vec<T>"}, "(usize, usize, usize)");

  SynthOptions Opts;
  Opts.SemanticAware = false;
  Checker Check(Arena, Traits);
  Synthesizer Synth(Arena, Traits, Db, vecTemplate(), 3, Opts);
  int Total = 0, LifetimeErrors = 0;
  while (auto P = Synth.next()) {
    ++Total;
    CompileResult R = Check.check(*P, Db);
    if (!R.Success && R.Diag.Category == ErrorCategory::LifetimeOwnership)
      ++LifetimeErrors;
    if (Total > 3000)
      break;
  }
  EXPECT_GT(Total, 50);
  EXPECT_GT(LifetimeErrors, 0)
      << "ablation should produce ownership violations";
}

//===----------------------------------------------------------------------===//
// Path post-check (Rule 7)
//===----------------------------------------------------------------------===//

TEST_F(SynthFixture, PathCheckRejectsUseAfterRootDeath) {
  addBuiltins();
  ApiSig First;
  First.Name = "first";
  First.Inputs = {parse("&Vec<String>")};
  First.Output = parse("&String");
  First.PropagatesFrom = {0};
  ApiId FirstId = Db.add(std::move(First));
  ApiId Consume = addApi("consume", {"Vec<String>"}, "usize");
  ApiId UseRef = addApi("use_ref", {"&String"}, "usize");

  Program P;
  P.Inputs = vecTemplate();
  P.Stmts.push_back(Stmt{Borrow, {1}, 2, parse("&Vec<String>")});
  P.Stmts.push_back(Stmt{FirstId, {2}, 3, parse("&String")});
  P.Stmts.push_back(Stmt{Consume, {1}, 4, parse("usize")});
  P.Stmts.push_back(Stmt{UseRef, {3}, 5, parse("usize")});
  EXPECT_FALSE(Encoding::pathCheckOk(P, Db, Traits));

  // Using the propagated reference before the root dies is fine.
  Program P2;
  P2.Inputs = vecTemplate();
  P2.Stmts.push_back(Stmt{Borrow, {1}, 2, parse("&Vec<String>")});
  P2.Stmts.push_back(Stmt{FirstId, {2}, 3, parse("&String")});
  P2.Stmts.push_back(Stmt{UseRef, {3}, 4, parse("usize")});
  P2.Stmts.push_back(Stmt{Consume, {1}, 5, parse("usize")});
  EXPECT_TRUE(Encoding::pathCheckOk(P2, Db, Traits));
}

//===----------------------------------------------------------------------===//
// Refinement interplay
//===----------------------------------------------------------------------===//

TEST_F(SynthFixture, AdditiveDatabaseChangeExtendsInPlace) {
  addApi("f", {"String"}, "usize");
  Synthesizer Synth(Arena, Traits, Db, vecTemplate(), 1);
  auto P1 = Synth.next();
  ASSERT_TRUE(P1.has_value());
  // Refinement adds a new API; the live encoding is extended in place,
  // so the solver never revisits f(s) and nothing is rebuilt.
  addApi("g", {"Vec<String>"}, "usize");
  Synth.notifyDatabaseChanged();
  std::vector<std::string> Names;
  while (auto P = Synth.next())
    Names.push_back(Db.get(P->Stmts[0].Api).Name);
  ASSERT_EQ(Names.size(), 1u);
  EXPECT_EQ(Names[0], "g");
  EXPECT_EQ(Synth.stats().DuplicatesSkipped, 0u);
  EXPECT_GE(Synth.stats().IncrementalExtends, 1u);
  EXPECT_EQ(Synth.stats().Rebuilds, 1u); // The initial construction only.
}

TEST_F(SynthFixture, RebuildPathStillSkipsDuplicatesViaHashes) {
  // The historical rebuild-the-world path (IncrementalRefinement off):
  // the fresh solver re-emits f(s) and the hash set has to drop it.
  addApi("f", {"String"}, "usize");
  SynthOptions Opts;
  Opts.IncrementalRefinement = false;
  Synthesizer Synth(Arena, Traits, Db, vecTemplate(), 1, Opts);
  auto P1 = Synth.next();
  ASSERT_TRUE(P1.has_value());
  addApi("g", {"Vec<String>"}, "usize");
  Synth.notifyDatabaseChanged();
  std::vector<std::string> Names;
  while (auto P = Synth.next())
    Names.push_back(Db.get(P->Stmts[0].Api).Name);
  ASSERT_EQ(Names.size(), 1u);
  EXPECT_EQ(Names[0], "g");
  EXPECT_GT(Synth.stats().DuplicatesSkipped, 0u);
  EXPECT_GE(Synth.stats().Rebuilds, 2u);
}

TEST_F(SynthFixture, DestructiveChangeRebuildsAndReplaysBlockedModels) {
  // A ban is destructive: the encoding must be rebuilt. Blocked-model
  // signatures are replayed into the fresh solver, so programs emitted
  // before the ban still never come back from the solver.
  ApiId F = addApi("f", {"String"}, "usize");
  addApi("g", {"Vec<String>"}, "usize");
  ApiId H = addApi("h", {"String"}, "isize");
  (void)F;
  Synthesizer Synth(Arena, Traits, Db, vecTemplate(), 1);
  auto P1 = Synth.next();
  ASSERT_TRUE(P1.has_value());
  Db.ban(H);
  Synth.notifyDatabaseChanged();
  std::vector<std::string> Names;
  while (auto P = Synth.next())
    Names.push_back(Db.get(P->Stmts[0].Api).Name);
  for (const std::string &N : Names) {
    EXPECT_NE(N, "h");
    EXPECT_NE(N, Db.get(P1->Stmts[0].Api).Name);
  }
  EXPECT_GE(Synth.stats().Rebuilds, 2u);
  EXPECT_EQ(Synth.stats().DuplicatesSkipped, 0u);
  // At least the pre-ban emission was replayed (unless it used h).
  if (P1->Stmts[0].Api != H)
    EXPECT_GE(Synth.stats().ModelsReblocked, 1u);
}

TEST_F(SynthFixture, DeadLengthRevivedByDatabaseAddition) {
  // Interleaved mode, MaxLines=3. Initially length 3 is UNSAT (mk; eat;
  // then nothing can use a usize), so its slot goes dormant. A refinement
  // step then adds gulp: usize -> u8, which makes a 3-statement program
  // reachable - the dead length must come back to life.
  addApi("mk", {"String"}, "Token");
  addApi("eat", {"Token"}, "usize");
  SynthOptions Opts;
  Opts.InterleaveLengths = true;
  Synthesizer Synth(Arena, Traits, Db, vecTemplate(), 3, Opts);
  size_t MaxLen = 0;
  while (auto P = Synth.next())
    MaxLen = std::max(MaxLen, P->Stmts.size());
  EXPECT_LT(MaxLen, 3u);
  // The space is exhausted; without revival the synthesizer would stay
  // done forever.
  addApi("gulp", {"usize"}, "u8");
  Synth.notifyDatabaseChanged();
  bool SawLen3 = false;
  while (auto P = Synth.next())
    SawLen3 |= P->Stmts.size() == 3;
  EXPECT_TRUE(SawLen3);
  EXPECT_GE(Synth.stats().DeadLengthRevivals, 1u);
}

TEST_F(SynthFixture, DeadLengthRevivedOnRebuildPathToo) {
  // The revival fix is independent of incremental refinement: with the
  // historical rebuild path the dormant length must also be rebuilt and
  // re-enumerated after an addition.
  addApi("mk", {"String"}, "Token");
  addApi("eat", {"Token"}, "usize");
  SynthOptions Opts;
  Opts.InterleaveLengths = true;
  Opts.IncrementalRefinement = false;
  Synthesizer Synth(Arena, Traits, Db, vecTemplate(), 3, Opts);
  while (Synth.next().has_value())
    ;
  addApi("gulp", {"usize"}, "u8");
  Synth.notifyDatabaseChanged();
  bool SawLen3 = false;
  while (auto P = Synth.next())
    SawLen3 |= P->Stmts.size() == 3;
  EXPECT_TRUE(SawLen3);
  EXPECT_GE(Synth.stats().DeadLengthRevivals, 1u);
}

TEST_F(SynthFixture, BudgetStoppedLengthRevivedByDestructiveChange) {
  // A solve stopped by the conflict budget returns Unknown - not an
  // exhaustion proof - so the dormant length must revive on ANY
  // database change, including destructive ones that only shrink the
  // space (a ban). Only an UNSAT-proven length may sleep through those.
  addBuiltins();
  ApiId F = addApi("f", {"String"}, "usize");
  addApi("g", {"Vec<String>"}, "usize");
  addApi("h", {"usize", "usize"}, "String");
  SynthOptions Opts;
  Opts.InterleaveLengths = true;
  Opts.SolveConflictBudget = 1; // Every nontrivial episode trips.
  Synthesizer Synth(Arena, Traits, Db, vecTemplate(), 3, Opts);
  while (Synth.next().has_value())
    ;
  ASSERT_TRUE(Synth.sawBudgetStop());
  uint64_t EmittedBefore = Synth.stats().Emitted;
  // Bans add no instances, so a length proven UNSAT would stay dead
  // here; the budget-stopped lengths must come back anyway.
  Db.ban(F);
  Synth.notifyDatabaseChanged();
  EXPECT_GE(Synth.stats().DeadLengthRevivals, 1u);
  while (auto P = Synth.next()) {
    for (const Stmt &S : P->Stmts)
      EXPECT_NE(S.Api, F) << P->render(Db);
  }
  EXPECT_GE(Synth.stats().Emitted, EmittedBefore);
}

TEST_F(SynthFixture, BlockedComboSuppressed) {
  ApiId Pop = addApi("Vec::pop", {"&mut Vec<T>"}, "Option<T>");
  (void)Pop;
  addBuiltins();
  // Block pop on &mut Vec<String> before synthesis starts.
  Db.blockCombo(Pop, {parse("&mut Vec<String>")});
  Synthesizer Synth(Arena, Traits, Db, vecTemplate(), 3);
  while (auto P = Synth.next()) {
    for (const Stmt &S : P->Stmts)
      EXPECT_NE(S.Api, Pop) << P->render(Db);
  }
}

TEST_F(SynthFixture, BannedApiNeverUsed) {
  ApiId F = addApi("f", {"String"}, "usize");
  addApi("g", {"Vec<String>"}, "usize");
  Db.ban(F);
  Synthesizer Synth(Arena, Traits, Db, vecTemplate(), 1);
  int Count = 0;
  while (auto P = Synth.next()) {
    ++Count;
    EXPECT_NE(P->Stmts[0].Api, F);
  }
  EXPECT_EQ(Count, 1);
}

//===----------------------------------------------------------------------===//
// Incremental-refinement determinism properties
//===----------------------------------------------------------------------===//

struct ScriptedRun {
  std::vector<uint64_t> Hashes;
  uint64_t DuplicatesSkipped = 0;
  uint64_t IncrementalExtends = 0;
};

/// A refinement-heavy scripted workload: four rounds of "emit up to 25
/// programs, then the database gains an API", then drain to exhaustion.
/// Self-contained so one test can compare several independent runs.
ScriptedRun runScriptedRefinement(bool Incremental) {
  TypeArena Arena;
  TypeParser Parser{Arena, {}};
  TraitEnv Traits{Arena};
  ApiDatabase Db;
  addBuiltinApis(Db, Arena);
  auto Add = [&](const std::string &Name, std::vector<std::string> Ins,
                 const std::string &Out) {
    ApiSig Sig;
    Sig.Name = Name;
    for (const auto &I : Ins)
      Sig.Inputs.push_back(Parser.parse(I));
    Sig.Output = Parser.parse(Out);
    Db.add(std::move(Sig));
  };
  Add("f", {"String"}, "Token");
  Add("g", {"Token"}, "usize");
  Add("h", {"Vec<String>"}, "usize");
  std::vector<TemplateInput> Inputs = {{"s", Parser.parse("String")},
                                       {"v", Parser.parse("Vec<String>")}};
  SynthOptions Opts;
  Opts.IncrementalRefinement = Incremental;
  Synthesizer Synth(Arena, Traits, Db, Inputs, /*MaxLines=*/3, Opts);
  ScriptedRun Run;
  for (int Round = 0; Round < 4; ++Round) {
    for (int K = 0; K < 25; ++K) {
      auto P = Synth.next();
      if (!P.has_value())
        break;
      Run.Hashes.push_back(P->hash());
    }
    Add("r" + std::to_string(Round), {"usize"},
        "Out" + std::to_string(Round));
    Synth.notifyDatabaseChanged();
  }
  while (auto P = Synth.next())
    Run.Hashes.push_back(P->hash());
  Run.DuplicatesSkipped = Synth.stats().DuplicatesSkipped;
  Run.IncrementalExtends = Synth.stats().IncrementalExtends;
  return Run;
}

TEST(SynthDeterminism, IncrementalPathIsDeterministicAcrossRuns) {
  ScriptedRun A = runScriptedRefinement(true);
  ScriptedRun B = runScriptedRefinement(true);
  ASSERT_FALSE(A.Hashes.empty());
  // Same config, same seed: the emitted hash sequences are identical.
  EXPECT_EQ(A.Hashes, B.Hashes);
  EXPECT_GE(A.IncrementalExtends, 1u);
  EXPECT_EQ(A.DuplicatesSkipped, 0u);
}

TEST(SynthDeterminism, IncrementalMatchesRebuildEmittedSet) {
  ScriptedRun Inc = runScriptedRefinement(true);
  ScriptedRun Reb = runScriptedRefinement(false);
  ASSERT_FALSE(Inc.Hashes.empty());
  // Enumeration order may differ between the paths, but the emitted
  // program set must be identical - and duplicates must vanish on the
  // incremental path while the rebuild path leans on the hash set.
  std::set<uint64_t> IncSet(Inc.Hashes.begin(), Inc.Hashes.end());
  std::set<uint64_t> RebSet(Reb.Hashes.begin(), Reb.Hashes.end());
  EXPECT_EQ(IncSet.size(), Inc.Hashes.size());
  EXPECT_EQ(RebSet.size(), Reb.Hashes.size());
  EXPECT_EQ(IncSet, RebSet);
  EXPECT_EQ(Inc.DuplicatesSkipped, 0u);
  EXPECT_GT(Reb.DuplicatesSkipped, 0u);
}

//===----------------------------------------------------------------------===//
// Graph-guided encoding pruning
//===----------------------------------------------------------------------===//

struct PrunedRun {
  std::vector<uint64_t> Hashes;
  uint64_t GraphProbes = 0;
  uint64_t FallbackProbes = 0;
  uint64_t DeadSites = 0;
  uint64_t VarsAvoided = 0;
};

/// The refinement-heavy script of runScriptedRefinement with the frozen
/// dependency graph wired into the encoder, plus one API ("lone") whose
/// u8 slot nothing in the universe can feed - a dead site on every line.
/// Round additions get ids beyond the frozen graph, exercising the
/// fallback arm.
PrunedRun runGraphScripted(bool GraphPrune, bool Incremental) {
  TypeArena Arena;
  TypeParser Parser{Arena, {}};
  TraitEnv Traits{Arena};
  ApiDatabase Db;
  addBuiltinApis(Db, Arena);
  auto Add = [&](const std::string &Name, std::vector<std::string> Ins,
                 const std::string &Out) {
    ApiSig Sig;
    Sig.Name = Name;
    for (const auto &I : Ins)
      Sig.Inputs.push_back(Parser.parse(I));
    Sig.Output = Parser.parse(Out);
    Db.add(std::move(Sig));
  };
  Add("f", {"String"}, "Token");
  Add("g", {"Token"}, "usize");
  Add("h", {"Vec<String>"}, "usize");
  Add("lone", {"u8"}, "IoHandle");
  types::CompatCache Scratch;
  api::DependencyGraph Graph =
      api::buildDependencyGraph(Db, Arena, Scratch);
  std::vector<TemplateInput> Inputs = {{"s", Parser.parse("String")},
                                       {"v", Parser.parse("Vec<String>")}};
  SynthOptions Opts;
  Opts.IncrementalRefinement = Incremental;
  Opts.Graph = &Graph;
  Opts.GraphPrune = GraphPrune;
  Synthesizer Synth(Arena, Traits, Db, Inputs, /*MaxLines=*/3, Opts);
  PrunedRun Run;
  for (int Round = 0; Round < 4; ++Round) {
    for (int K = 0; K < 25; ++K) {
      auto P = Synth.next();
      if (!P.has_value())
        break;
      Run.Hashes.push_back(P->hash());
    }
    Add("r" + std::to_string(Round), {"usize"},
        "Out" + std::to_string(Round));
    Synth.notifyDatabaseChanged();
  }
  while (auto P = Synth.next())
    Run.Hashes.push_back(P->hash());
  Run.GraphProbes = Synth.stats().PruneGraphProbes;
  Run.FallbackProbes = Synth.stats().PruneFallbackProbes;
  Run.DeadSites = Synth.stats().PruneDeadSites;
  Run.VarsAvoided = Synth.stats().PruneVarsAvoided;
  return Run;
}

TEST(SynthGraphPrune, StreamIdenticalPruneOnAndOff) {
  PrunedRun On = runGraphScripted(true, true);
  PrunedRun Off = runGraphScripted(false, true);
  ASSERT_FALSE(On.Hashes.empty());
  // The invariant behind --no-graph-prune: the graph's edge set is the
  // probe-success set, so the emitted stream is identical in ORDER, not
  // just as a set.
  EXPECT_EQ(On.Hashes, Off.Hashes);
  // The probe split shows the switch took effect...
  EXPECT_GT(On.GraphProbes, 0u);
  EXPECT_EQ(Off.GraphProbes, 0u);
  EXPECT_GT(Off.FallbackProbes, 0u);
  // ...and the probe population is identical: every probe the off mode
  // computes, the on mode answers from the graph or the fallback arm.
  EXPECT_EQ(On.GraphProbes + On.FallbackProbes, Off.FallbackProbes);
  // Dead-site elimination is structural, identical in both modes.
  EXPECT_GT(On.DeadSites, 0u);
  EXPECT_EQ(On.DeadSites, Off.DeadSites);
  EXPECT_EQ(On.VarsAvoided, Off.VarsAvoided);
}

TEST(SynthGraphPrune, ExtendMatchesFreshPrunedRebuildSet) {
  // extendForDatabaseChange() after the additive rounds must leave the
  // pruned encoder with the same emitted set a fresh pruned rebuild
  // enumerates (order may differ between the paths; the incremental one
  // must stay duplicate-free without the hash net's help).
  PrunedRun Inc = runGraphScripted(true, true);
  PrunedRun Reb = runGraphScripted(true, false);
  ASSERT_FALSE(Inc.Hashes.empty());
  std::set<uint64_t> IncSet(Inc.Hashes.begin(), Inc.Hashes.end());
  std::set<uint64_t> RebSet(Reb.Hashes.begin(), Reb.Hashes.end());
  EXPECT_EQ(IncSet.size(), Inc.Hashes.size());
  EXPECT_EQ(IncSet, RebSet);
}

TEST_F(SynthFixture, DeadLengthRevivalWithPrunedEncodings) {
  // The mk;eat prefix exhausts below length 3; gulp (added after the
  // graph froze, so answered by the fallback arm) revives the dormant
  // length. Revival must re-probe dead sites from scratch - "eat"'s
  // line-2 site materializes only now.
  addApi("mk", {"String"}, "Token");
  addApi("eat", {"Token"}, "usize");
  types::CompatCache Scratch;
  api::DependencyGraph Graph =
      api::buildDependencyGraph(Db, Arena, Scratch);
  SynthOptions Opts;
  Opts.InterleaveLengths = true;
  Opts.Graph = &Graph;
  Opts.GraphPrune = true;
  Synthesizer Synth(Arena, Traits, Db, vecTemplate(), 3, Opts);
  size_t MaxLen = 0;
  while (auto P = Synth.next())
    MaxLen = std::max(MaxLen, P->Stmts.size());
  EXPECT_LT(MaxLen, 3u);
  addApi("gulp", {"usize"}, "u8");
  Synth.notifyDatabaseChanged();
  bool SawLen3 = false;
  while (auto P = Synth.next())
    SawLen3 |= P->Stmts.size() == 3;
  EXPECT_TRUE(SawLen3);
  EXPECT_GE(Synth.stats().DeadLengthRevivals, 1u);
  EXPECT_GT(Synth.stats().PruneGraphProbes, 0u);
  EXPECT_GT(Synth.stats().PruneFallbackProbes, 0u);
}

TEST_F(SynthFixture, NoDuplicateProgramsAcrossFullEnumeration) {
  addBuiltins();
  addApi("Vec::len", {"&Vec<T>"}, "usize");
  addApi("String::len", {"&String"}, "usize");
  Synthesizer Synth(Arena, Traits, Db, vecTemplate(), 3);
  std::set<uint64_t> Hashes;
  std::set<std::string> Sources;
  int Total = 0;
  while (auto P = Synth.next()) {
    EXPECT_TRUE(Hashes.insert(P->hash()).second);
    EXPECT_TRUE(Sources.insert(P->render(Db)).second)
        << "duplicate source:\n"
        << P->render(Db);
    if (++Total > 3000)
      break;
  }
  EXPECT_GT(Total, 3);
}

//===----------------------------------------------------------------------===//
// Collision-checked duplicate net
//===----------------------------------------------------------------------===//

TEST(SeenProgramsTest, CollisionsAreDistinguishedFromDuplicates) {
  SeenPrograms Seen;
  EXPECT_EQ(Seen.noteKeyed(42, "0(1)"), SeenOutcome::Fresh);
  EXPECT_EQ(Seen.noteKeyed(42, "0(1)"), SeenOutcome::Duplicate);
  // Same hash, different canonical key: a true 64-bit collision. The
  // program must be emitted (not silently dropped) and counted.
  EXPECT_EQ(Seen.noteKeyed(42, "1(2)"), SeenOutcome::Collision);
  EXPECT_EQ(Seen.noteKeyed(42, "1(2)"), SeenOutcome::Duplicate);
  // Same key under a different hash is an independent fresh program.
  EXPECT_EQ(Seen.noteKeyed(7, "1(2)"), SeenOutcome::Fresh);
}

TEST_F(SynthFixture, ForcedCollidingProgramsBothSurviveTheNet) {
  // Two genuinely distinct one-line programs forced onto one hash: the
  // canonical keys differ, so the second is kept as a collision and the
  // third (a replay of the first) is the only true duplicate.
  ApiId F = addApi("f", {"String"}, "usize");
  ApiId G = addApi("g", {"Vec<String>"}, "usize");
  Program A;
  A.Inputs = vecTemplate();
  A.Stmts.push_back(Stmt{F, {0}, 2, parse("usize")});
  Program B;
  B.Inputs = vecTemplate();
  B.Stmts.push_back(Stmt{G, {1}, 2, parse("usize")});

  SeenPrograms Seen;
  const uint64_t ForcedHash = 99;
  EXPECT_EQ(Seen.noteKeyed(ForcedHash, SeenPrograms::canonicalKey(A)),
            SeenOutcome::Fresh);
  EXPECT_EQ(Seen.noteKeyed(ForcedHash, SeenPrograms::canonicalKey(B)),
            SeenOutcome::Collision);
  EXPECT_EQ(Seen.noteKeyed(ForcedHash, SeenPrograms::canonicalKey(A)),
            SeenOutcome::Duplicate);
}

//===----------------------------------------------------------------------===//
// Encoder/checker agreement on &mut-by-value consumption
//===----------------------------------------------------------------------===//

TEST_F(SynthFixture, MutRefConsumingApisAgreeWithChecker) {
  // take(T) can bind T := &mut Vec<String> and swallow a BorrowMut
  // output by value. &mut T is not Copy, so the encoder must kill the
  // reference exactly like the checker moves it; any emitted
  // use-after-consumption would surface here as a LifetimeOwnership
  // rejection.
  Traits.addDefaultPrimImpls();
  addBuiltins();
  addApi("Vec::pop", {"&mut Vec<T>"}, "Option<T>");
  addApi("take", {"T"}, "usize");

  Checker Check(Arena, Traits);
  Synthesizer Synth(Arena, Traits, Db, vecTemplate(), 4);
  int Total = 0, TookMutRef = 0;
  while (auto P = Synth.next()) {
    ++Total;
    CompileResult R = Check.check(*P, Db);
    if (!R.Success)
      EXPECT_NE(R.Diag.Category, ErrorCategory::LifetimeOwnership)
          << P->render(Db) << R.Diag.Message;
    for (const Stmt &S : P->Stmts) {
      if (Db.get(S.Api).Name != "take")
        continue;
      VarId V = S.Args[0];
      const Type *ArgTy = V < static_cast<VarId>(P->Inputs.size())
                              ? P->Inputs[V].Ty
                              : P->Stmts[V - P->Inputs.size()].DeclType;
      if (ArgTy && ArgTy->isMutRef())
        ++TookMutRef;
    }
    if (Total > 4000)
      break;
  }
  EXPECT_GT(Total, 10);
  EXPECT_GT(TookMutRef, 0)
      << "enumeration never exercised take(&mut _): test is vacuous";
}

} // namespace
