//===--- RefineTest.cpp - Tests for hybrid API refinement -----------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "refine/RefinementEngine.h"
#include "rustsim/Checker.h"
#include "synth/Synthesizer.h"
#include "types/TypeParser.h"

#include <gtest/gtest.h>

using namespace syrust;
using namespace syrust::api;
using namespace syrust::program;
using namespace syrust::refine;
using namespace syrust::rustsim;
using namespace syrust::synth;
using namespace syrust::types;

namespace {

class RefineFixture : public ::testing::Test {
protected:
  TypeArena Arena;
  TypeParser Parser{Arena, {"T", "O"}};
  TraitEnv Traits{Arena};
  ApiDatabase Db;

  const Type *parse(const std::string &S) {
    const Type *T = Parser.parse(S);
    EXPECT_NE(T, nullptr) << Parser.error();
    return T;
  }

  ApiId addApi(const std::string &Name, std::vector<std::string> Ins,
               const std::string &Out,
               std::vector<std::pair<std::string, std::string>> Bounds = {}) {
    ApiSig Sig;
    Sig.Name = Name;
    for (const auto &I : Ins)
      Sig.Inputs.push_back(parse(I));
    Sig.Output = parse(Out);
    Sig.Bounds = std::move(Bounds);
    return Db.add(std::move(Sig));
  }

  std::vector<TemplateInput> vecTemplate() {
    return {{"s", parse("String")}, {"v", parse("Vec<String>")},
            {"n", parse("usize")}};
  }
};

//===----------------------------------------------------------------------===//
// Harvesting
//===----------------------------------------------------------------------===//

TEST_F(RefineFixture, HarvestFindsTemplateAndSignatureTypes) {
  addApi("f", {"&Vec<i32>"}, "Option<bool>");
  auto Types = harvestConcreteTypes(Db, vecTemplate());
  auto Has = [&](const std::string &S) {
    const Type *T = parse(S);
    return std::find(Types.begin(), Types.end(), T) != Types.end();
  };
  EXPECT_TRUE(Has("String"));
  EXPECT_TRUE(Has("Vec<String>"));
  EXPECT_TRUE(Has("usize"));
  EXPECT_TRUE(Has("Vec<i32>"));   // Subterm through the reference.
  EXPECT_TRUE(Has("i32"));        // Nested subterm.
  EXPECT_TRUE(Has("Option<bool>"));
  EXPECT_TRUE(Has("bool"));
}

TEST_F(RefineFixture, HarvestSkipsRefsUnitAndVars) {
  addApi("g", {"&mut Vec<T>"}, "()");
  auto Types = harvestConcreteTypes(Db, {});
  for (const Type *T : Types) {
    EXPECT_FALSE(T->isRef());
    EXPECT_FALSE(T->isUnit());
    EXPECT_TRUE(T->isConcrete());
  }
}

//===----------------------------------------------------------------------===//
// 5.1: no-input polymorphism
//===----------------------------------------------------------------------===//

TEST_F(RefineFixture, ConstructorEagerlyConcretized) {
  ApiId New = addApi("Vec::new", {}, "Vec<T>");
  RefinementEngine Engine(Arena, Db, RefinementMode::Hybrid);
  Engine.initialize(vecTemplate());
  EXPECT_TRUE(Db.isBanned(New));
  EXPECT_GT(Engine.stats().EagerConcretizations, 0u);
  // A Vec<String> variant must exist among the concretizations.
  bool Found = false;
  for (size_t I = 0; I < Db.size(); ++I) {
    const ApiSig &Sig = Db.get(static_cast<ApiId>(I));
    if (Sig.Name == "Vec::new" && Sig.Output == parse("Vec<String>") &&
        !Db.isBanned(static_cast<ApiId>(I)))
      Found = true;
  }
  EXPECT_TRUE(Found);
}

TEST_F(RefineFixture, InputResolvedPolymorphismNotEagerlyExpanded) {
  // pop's output variable is pinned by its input; hybrid leaves it lazy.
  ApiId Pop = addApi("Vec::pop", {"&mut Vec<T>"}, "Option<T>");
  RefinementEngine Engine(Arena, Db, RefinementMode::Hybrid);
  Engine.initialize(vecTemplate());
  EXPECT_FALSE(Db.isBanned(Pop));
  EXPECT_EQ(Engine.stats().EagerConcretizations, 0u);
}

TEST_F(RefineFixture, ConstructorWithConcreteInputsStillEager) {
  // with_capacity(usize) -> Vec<T>: inputs do not pin T.
  ApiId WithCap = addApi("Vec::with_capacity", {"usize"}, "Vec<T>");
  RefinementEngine Engine(Arena, Db, RefinementMode::Hybrid);
  Engine.initialize(vecTemplate());
  EXPECT_TRUE(Db.isBanned(WithCap));
  EXPECT_GT(Engine.stats().EagerConcretizations, 0u);
}

TEST_F(RefineFixture, PurelyLazySkipsEagerPass) {
  ApiId New = addApi("Vec::new", {}, "Vec<T>");
  RefinementEngine Engine(Arena, Db, RefinementMode::PurelyLazy);
  Engine.initialize(vecTemplate());
  EXPECT_FALSE(Db.isBanned(New));
  EXPECT_EQ(Engine.stats().EagerConcretizations, 0u);
}

TEST_F(RefineFixture, PurelyEagerExpandsEverything) {
  ApiId Pop = addApi("Vec::pop", {"&mut Vec<T>"}, "Option<T>");
  ApiId New = addApi("Vec::new", {}, "Vec<T>");
  RefinementEngine Engine(Arena, Db, RefinementMode::PurelyEager);
  Engine.initialize(vecTemplate());
  EXPECT_TRUE(Db.isBanned(Pop));
  EXPECT_TRUE(Db.isBanned(New));
  EXPECT_GT(Engine.stats().EagerConcretizations, 4u);
}

//===----------------------------------------------------------------------===//
// 5.2: trait feedback
//===----------------------------------------------------------------------===//

TEST_F(RefineFixture, TraitErrorOnConcreteApiRemovesIt) {
  ApiId Bad = addApi("Set::insert", {"HashSet<f64>", "f64"}, "bool");
  RefinementEngine Engine(Arena, Db, RefinementMode::Hybrid);
  Engine.initialize(vecTemplate());
  Diagnostic D;
  D.Detail = ErrorDetail::TraitBound;
  D.Category = ErrorCategory::Type;
  D.Api = Bad;
  D.BadTypeVar = "T";
  D.MissingTrait = "Hash";
  EXPECT_TRUE(Engine.onDiagnostic(D));
  EXPECT_TRUE(Db.isBanned(Bad));
  EXPECT_EQ(Engine.stats().TraitRemovals, 1u);
}

TEST_F(RefineFixture, TraitErrorOnPolymorphicApiBlocksCombo) {
  ApiId Ins = addApi("Set::insert", {"&mut HashSet<T>", "T"}, "bool",
                     {{"T", "Hash"}});
  RefinementEngine Engine(Arena, Db, RefinementMode::Hybrid);
  Engine.initialize(vecTemplate());
  Diagnostic D;
  D.Detail = ErrorDetail::TraitBound;
  D.Api = Ins;
  D.ActualInputs = {parse("&mut HashSet<f64>"), parse("f64")};
  EXPECT_TRUE(Engine.onDiagnostic(D));
  EXPECT_FALSE(Db.isBanned(Ins));
  EXPECT_TRUE(Db.isComboBlocked(Ins, D.ActualInputs));
}

//===----------------------------------------------------------------------===//
// 5.3: duplicate-and-block
//===----------------------------------------------------------------------===//

TEST_F(RefineFixture, DirectFixFromExpectedOutput) {
  ApiId Pop = addApi("Vec::pop", {"&mut Vec<T>"}, "Option<T>");
  RefinementEngine Engine(Arena, Db, RefinementMode::Hybrid);
  Engine.initialize(vecTemplate());
  Diagnostic D;
  D.Detail = ErrorDetail::Polymorphism;
  D.Api = Pop;
  D.ActualInputs = {parse("&mut Vec<String>")};
  D.ExpectedOutput = parse("Option<String>");
  EXPECT_TRUE(Engine.onDiagnostic(D));
  // A concrete duplicate must exist and the original must be blocked on
  // that combination.
  ApiSig Probe;
  Probe.Name = "Vec::pop";
  Probe.Inputs = {parse("&mut Vec<String>")};
  Probe.Output = parse("Option<String>");
  ApiId Dup = Db.findDuplicate(Probe);
  ASSERT_NE(Dup, ApiIdInvalid);
  EXPECT_EQ(Db.get(Dup).RefinedFrom, Pop);
  EXPECT_TRUE(Db.isComboBlocked(Pop, D.ActualInputs));
  // Re-reporting the same fix is a no-op.
  EXPECT_FALSE(Engine.onDiagnostic(D));
}

TEST_F(RefineFixture, OnSuccessDuplicatesPolymorphicOutputUse) {
  auto Builtins = addBuiltinApis(Db, Arena);
  ApiId Pop = addApi("Vec::pop", {"&mut Vec<T>"}, "Option<T>");
  RefinementEngine Engine(Arena, Db, RefinementMode::Hybrid);
  Engine.initialize(vecTemplate());

  Program P;
  P.Inputs = vecTemplate();
  P.Stmts.push_back(Stmt{Builtins[0], {1}, 3, parse("Vec<String>")});
  P.Stmts.push_back(Stmt{Builtins[2], {3}, 4, parse("&mut Vec<String>")});
  P.Stmts.push_back(Stmt{Pop, {4}, 5, parse("Option<String>")});
  EXPECT_TRUE(Engine.onSuccess(P));
  EXPECT_EQ(Engine.stats().OutputDuplications, 1u);
  EXPECT_TRUE(
      Db.isComboBlocked(Pop, {parse("&mut Vec<String>")}));
  // Idempotent.
  EXPECT_FALSE(Engine.onSuccess(P));
}

TEST_F(RefineFixture, ArityQuirkBannedAfterStrikes) {
  ApiId Bad = addApi("Skewed::f", {"usize"}, "usize");
  RefinementEngine Engine(Arena, Db, RefinementMode::Hybrid);
  Engine.initialize(vecTemplate());
  Diagnostic D;
  D.Detail = ErrorDetail::Arity;
  D.Api = Bad;
  EXPECT_FALSE(Engine.onDiagnostic(D));
  EXPECT_FALSE(Engine.onDiagnostic(D));
  EXPECT_TRUE(Engine.onDiagnostic(D)); // Third strike bans.
  EXPECT_TRUE(Db.isBanned(Bad));
}

TEST_F(RefineFixture, UnfixableCategoriesAreNoOps) {
  ApiId A = addApi("x", {"usize"}, "usize");
  RefinementEngine Engine(Arena, Db, RefinementMode::Hybrid);
  Engine.initialize(vecTemplate());
  for (ErrorDetail Detail :
       {ErrorDetail::MethodNotFound, ErrorDetail::DefaultTypeParam,
        ErrorDetail::AnonLifetime, ErrorDetail::Ownership,
        ErrorDetail::Borrowing}) {
    Diagnostic D;
    D.Detail = Detail;
    D.Api = A;
    EXPECT_FALSE(Engine.onDiagnostic(D));
    EXPECT_FALSE(Db.isBanned(A));
  }
}

TEST_F(RefineFixture, PurelyEagerIgnoresFeedback) {
  ApiId Pop = addApi("Vec::pop", {"&mut Vec<T>"}, "Option<T>");
  RefinementEngine Engine(Arena, Db, RefinementMode::PurelyEager);
  Engine.initialize(vecTemplate());
  Diagnostic D;
  D.Detail = ErrorDetail::TraitBound;
  D.Api = Pop;
  D.ActualInputs = {parse("&mut Vec<f64>")};
  EXPECT_FALSE(Engine.onDiagnostic(D));
}

//===----------------------------------------------------------------------===//
// End-to-end: the Section 5.3 narrative against the real synthesizer and
// checker - polymorphic pop chains become compilable after refinement.
//===----------------------------------------------------------------------===//

TEST_F(RefineFixture, RefinementLoopConvergesOnVecLibrary) {
  Traits.addDefaultPrimImpls();
  Traits.addImpl("Clone", Arena.named("String"));
  auto Builtins = addBuiltinApis(Db, Arena);
  (void)Builtins;
  addApi("Vec::push", {"&mut Vec<T>", "T"}, "()");
  addApi("Vec::pop", {"&mut Vec<T>"}, "Option<T>");
  addApi("Vec::new", {}, "Vec<T>");
  addApi("Option::is_some", {"&Option<String>"}, "bool");

  RefinementEngine Engine(Arena, Db, RefinementMode::Hybrid);
  Engine.initialize(vecTemplate());

  Checker Check(Arena, Traits);
  Synthesizer Synth(Arena, Traits, Db, vecTemplate(), 4);
  int Total = 0, Errors = 0, LateErrors = 0;
  while (auto P = Synth.next()) {
    ++Total;
    CompileResult R = Check.check(*P, Db);
    bool Changed = false;
    if (!R.Success) {
      ++Errors;
      if (Total > 400)
        ++LateErrors;
      Changed = Engine.onDiagnostic(R.Diag);
    } else {
      Changed = Engine.onSuccess(*P);
    }
    if (Changed)
      Synth.notifyDatabaseChanged();
    if (Total >= 800)
      break;
  }
  EXPECT_GT(Total, 300);
  // Errors must be rare overall and vanish as refinement converges.
  EXPECT_LT(static_cast<double>(Errors) / Total, 0.10);
  EXPECT_EQ(LateErrors, 0) << "refinement failed to converge";
}

} // namespace
