//===--- TypeSystemTest.cpp - Tests for the Rust type model ---------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "types/Subtyping.h"
#include "types/TraitEnv.h"
#include "types/Type.h"
#include "types/TypeParser.h"

#include <gtest/gtest.h>

using namespace syrust::types;

namespace {

class TypeFixture : public ::testing::Test {
protected:
  TypeArena Arena;
  TypeParser Parser{Arena, {"T", "U", "O", "K", "V"}};

  const Type *parse(const std::string &S) {
    const Type *T = Parser.parse(S);
    EXPECT_NE(T, nullptr) << "parse failed: " << Parser.error();
    return T;
  }
};

//===----------------------------------------------------------------------===//
// Interning and rendering
//===----------------------------------------------------------------------===//

TEST_F(TypeFixture, InterningGivesPointerEquality) {
  const Type *A = Arena.named("Vec", {Arena.prim("i32")});
  const Type *B = Arena.named("Vec", {Arena.prim("i32")});
  EXPECT_EQ(A, B);
  EXPECT_NE(A, Arena.named("Vec", {Arena.prim("u32")}));
}

TEST_F(TypeFixture, VarAndNamedWithSameNameAreDistinct) {
  const Type *V = Arena.typeVar("T");
  const Type *N = Arena.named("T");
  EXPECT_NE(V, N);
  // Nested occurrence must also be distinct.
  const Type *VecV = Arena.named("Vec", {V});
  const Type *VecN = Arena.named("Vec", {N});
  EXPECT_NE(VecV, VecN);
  EXPECT_EQ(VecV->str(), VecN->str());
}

TEST_F(TypeFixture, RefMutabilityDistinct) {
  const Type *S = Arena.named("String");
  EXPECT_NE(Arena.ref(S, true), Arena.ref(S, false));
}

TEST_F(TypeFixture, RenderingMatchesRustSyntax) {
  EXPECT_EQ(parse("&mut Vec<String>")->str(), "&mut Vec<String>");
  EXPECT_EQ(parse("&u8")->str(), "&u8");
  EXPECT_EQ(parse("(usize, usize, usize)")->str(), "(usize, usize, usize)");
  EXPECT_EQ(parse("Option<T>")->str(), "Option<T>");
  EXPECT_EQ(parse("()")->str(), "()");
  EXPECT_EQ(parse("HashMap<K, V>")->str(), "HashMap<K, V>");
}

TEST_F(TypeFixture, ConcretenessFlag) {
  EXPECT_TRUE(parse("Vec<String>")->isConcrete());
  EXPECT_FALSE(parse("Vec<T>")->isConcrete());
  EXPECT_FALSE(parse("&mut Vec<T>")->isConcrete());
  EXPECT_TRUE(parse("i32")->isConcrete());
  EXPECT_FALSE(parse("(T, usize)")->isConcrete());
}

TEST_F(TypeFixture, CollectVarsInOrder) {
  std::vector<std::string> Vars;
  parse("HashMap<K, Vec<V>>")->collectVars(Vars);
  ASSERT_EQ(Vars.size(), 2u);
  EXPECT_EQ(Vars[0], "K");
  EXPECT_EQ(Vars[1], "V");
  Vars.clear();
  parse("(T, T, U)")->collectVars(Vars);
  ASSERT_EQ(Vars.size(), 2u);
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

TEST_F(TypeFixture, ParserHandlesWhitespace) {
  EXPECT_EQ(parse("  &mut   Vec< String > "), parse("&mut Vec<String>"));
}

TEST_F(TypeFixture, ParserNestedGenerics) {
  const Type *T = parse("Vec<Vec<Vec<i32>>>");
  ASSERT_EQ(T->kind(), TypeKind::Named);
  EXPECT_EQ(T->args()[0]->args()[0]->args()[0], Arena.prim("i32"));
}

TEST_F(TypeFixture, ParserModulePaths) {
  const Type *T = parse("bitvec::vec::BitVec<O, usize>");
  EXPECT_EQ(T->name(), "bitvec::vec::BitVec");
  EXPECT_EQ(T->args().size(), 2u);
  EXPECT_TRUE(T->args()[0]->isVar());
}

TEST_F(TypeFixture, ParserRejectsMalformed) {
  TypeParser P(Arena);
  EXPECT_EQ(P.parse("Vec<"), nullptr);
  EXPECT_EQ(P.parse("Vec<i32"), nullptr);
  EXPECT_EQ(P.parse("Vec<i32> extra"), nullptr);
  EXPECT_EQ(P.parse(""), nullptr);
  EXPECT_EQ(P.parse("(i32,"), nullptr);
  EXPECT_EQ(P.parse("i32<u8>"), nullptr);
  EXPECT_FALSE(P.error().empty());
}

TEST_F(TypeFixture, ParserParenthesizedTypeIsNotTuple) {
  EXPECT_EQ(parse("(i32)"), Arena.prim("i32"));
}

TEST_F(TypeFixture, ParserMutPrefixNeedsWordBoundary) {
  // "mutable" is an identifier, not "mut" + "able".
  const Type *T = parse("&mutable");
  ASSERT_NE(T, nullptr);
  EXPECT_TRUE(T->isSharedRef());
  EXPECT_EQ(T->pointee()->name(), "mutable");
}

//===----------------------------------------------------------------------===//
// Subtyping and matching
//===----------------------------------------------------------------------===//

TEST_F(TypeFixture, ReflexiveSubtyping) {
  const Type *T = parse("Vec<String>");
  EXPECT_TRUE(isSubtype(T, T));
}

TEST_F(TypeFixture, MutRefCoercesToSharedRef) {
  EXPECT_TRUE(isSubtype(parse("&mut String"), parse("&String")));
  EXPECT_FALSE(isSubtype(parse("&String"), parse("&mut String")));
}

TEST_F(TypeFixture, GenericArgumentsAreInvariant) {
  // Vec<&mut T> is not a subtype of Vec<&T> (invariance), unlike top-level.
  EXPECT_FALSE(
      isSubtype(parse("Vec<&mut String>"), parse("Vec<&String>")));
}

TEST_F(TypeFixture, VarMatchesAnythingAndBinds) {
  Substitution S;
  EXPECT_TRUE(isSubtype(parse("Vec<String>"), parse("T"), S));
  EXPECT_EQ(S.lookup("T"), parse("Vec<String>"));
}

TEST_F(TypeFixture, NestedVarBinding) {
  Substitution S;
  EXPECT_TRUE(isSubtype(parse("&mut Vec<String>"), parse("&mut Vec<T>"), S));
  EXPECT_EQ(S.lookup("T"), Arena.named("String"));
}

TEST_F(TypeFixture, InconsistentBindingRejected) {
  Substitution S;
  EXPECT_TRUE(isSubtype(parse("Vec<String>"), parse("Vec<T>"), S));
  EXPECT_FALSE(isSubtype(parse("i32"), parse("T"), S));
  EXPECT_TRUE(isSubtype(parse("String"), parse("T"), S));
}

TEST_F(TypeFixture, MatchCallJointSubstitution) {
  // Vec::push(&mut Vec<T>, T): (&mut Vec<String>, String) is fine.
  Substitution S;
  EXPECT_TRUE(matchCall({parse("&mut Vec<String>"), parse("String")},
                        {parse("&mut Vec<T>"), parse("T")}, S));
  EXPECT_EQ(S.lookup("T"), Arena.named("String"));
  // (&mut Vec<String>, i32) must fail: T cannot be both String and i32.
  Substitution S2;
  EXPECT_FALSE(matchCall({parse("&mut Vec<String>"), parse("i32")},
                         {parse("&mut Vec<T>"), parse("T")}, S2));
}

TEST_F(TypeFixture, MatchCallArityMismatch) {
  Substitution S;
  EXPECT_FALSE(matchCall({parse("i32")}, {parse("i32"), parse("i32")}, S));
}

TEST_F(TypeFixture, MultiVarMatch) {
  Substitution S;
  EXPECT_TRUE(matchCall({parse("HashMap<String, i32>"), parse("&String")},
                        {parse("HashMap<K, V>"), parse("&K")}, S));
  EXPECT_EQ(S.lookup("K"), Arena.named("String"));
  EXPECT_EQ(S.lookup("V"), Arena.prim("i32"));
}

TEST_F(TypeFixture, ApplySubstitution) {
  Substitution S;
  ASSERT_TRUE(isSubtype(parse("Vec<String>"), parse("Vec<T>"), S));
  EXPECT_EQ(applySubst(Arena, parse("Option<T>"), S),
            parse("Option<String>"));
  EXPECT_EQ(applySubst(Arena, parse("(T, usize)"), S),
            parse("(String, usize)"));
  // Unbound vars survive.
  EXPECT_EQ(applySubst(Arena, parse("Option<U>"), S), parse("Option<U>"));
}

TEST_F(TypeFixture, PolymorphicActualBindsIntoPattern) {
  // Context types may themselves be polymorphic (Vec<T> from Vec::new);
  // they bind into pattern variables wholesale.
  Substitution S;
  EXPECT_TRUE(isSubtype(parse("Vec<T>"), parse("U"), S));
  EXPECT_EQ(S.lookup("U"), parse("Vec<T>"));
}

TEST_F(TypeFixture, MutCoercionIsTopLevelOnly) {
  // &mut T ⊑ &T holds at the top of a type only; one level down the
  // reference is a generic argument and invariance applies — for
  // subtyping and for the encoder's optimistic unifiable alike.
  EXPECT_TRUE(isSubtype(parse("&mut String"), parse("&String")));
  EXPECT_FALSE(isSubtype(parse("&&mut String"), parse("&&String")));
  EXPECT_FALSE(
      isSubtype(parse("&mut &mut String"), parse("&mut &String")));
  EXPECT_FALSE(
      isSubtype(parse("Option<&mut String>"), parse("Option<&String>")));

  Substitution S1;
  EXPECT_TRUE(unifiable(parse("&mut Vec<T>"), parse("&Vec<String>"), S1));
  Substitution S2;
  EXPECT_FALSE(
      unifiable(parse("Vec<&mut String>"), parse("Vec<&String>"), S2));
  Substitution S3;
  EXPECT_FALSE(
      unifiable(parse("(&mut String, i32)"), parse("(&String, i32)"), S3));
}

TEST_F(TypeFixture, JointSubstitutionConflictsAcrossSlots) {
  // Two slots of one signature share the substitution: a binding made
  // while matching slot 1 must constrain slot 2 (Definition 2's joint
  // compatibleTypes condition), in both probe directions.
  Substitution S;
  EXPECT_TRUE(unifiable(parse("Vec<String>"), parse("Vec<T>"), S));
  EXPECT_FALSE(unifiable(parse("i32"), parse("T"), S));
  EXPECT_TRUE(unifiable(parse("String"), parse("T"), S));

  // Same conflict through matchCall on a two-slot signature where the
  // variable appears at different nesting depths.
  Substitution S2;
  EXPECT_FALSE(matchCall({parse("HashMap<String, i32>"), parse("&u8")},
                         {parse("HashMap<K, V>"), parse("&K")}, S2));

  // And with the variable on the actual side, as renamed signature
  // outputs feed later slots during encoding builds.
  Substitution S3;
  EXPECT_TRUE(unifiable(parse("T"), parse("String"), S3));
  EXPECT_FALSE(unifiable(parse("Vec<T>"), parse("Vec<i32>"), S3));
}

TEST_F(TypeFixture, BindRejectsConflictAndKeepsSubstitutionIntact) {
  // Substitution::bind is first-bind-wins: a conflicting rebind fails
  // without disturbing any existing entry, while an identical rebind is
  // an idempotent success.
  Substitution S;
  const Type *T = Arena.typeVar("T");
  const Type *U = Arena.typeVar("U");
  EXPECT_TRUE(S.bind(T, Arena.named("String")));
  EXPECT_TRUE(S.bind(U, Arena.prim("i32")));
  EXPECT_EQ(S.size(), 2u);

  EXPECT_FALSE(S.bind(T, Arena.prim("u8")));
  EXPECT_EQ(S.size(), 2u);
  EXPECT_EQ(S.lookup(T), Arena.named("String"));
  EXPECT_EQ(S.lookup(U), Arena.prim("i32"));

  EXPECT_TRUE(S.bind(T, Arena.named("String")));
  EXPECT_EQ(S.size(), 2u);

  // Pointer-keyed and name-keyed lookup agree.
  EXPECT_EQ(S.lookup("T"), S.lookup(T));
  EXPECT_EQ(S.lookup("missing"), nullptr);
}

TEST_F(TypeFixture, FailedMatchMayPartiallyExtend) {
  // The documented contract: on failure the substitution may be
  // partially extended (callers copy when rollback matters). A tuple
  // match that binds T from the first element before failing on the
  // second keeps the T binding.
  Substitution S;
  EXPECT_FALSE(isSubtype(parse("(String, i32)"), parse("(T, String)"), S));
  EXPECT_EQ(S.lookup("T"), Arena.named("String"));
  // The encoder's copy-then-probe pattern restores cleanly.
  Substitution Clean;
  EXPECT_TRUE(isSubtype(parse("(String, i32)"), parse("(T, U)"), Clean));
  EXPECT_EQ(Clean.size(), 2u);
}

//===----------------------------------------------------------------------===//
// Trait environment
//===----------------------------------------------------------------------===//

class TraitFixture : public TypeFixture {
protected:
  TraitEnv Env{Arena};

  void SetUp() override {
    Env.addDefaultPrimImpls();
    // impl Clone for String
    Env.addImpl("Clone", Arena.named("String"));
    // impl<T: Clone> Clone for Vec<T>
    Env.addImpl("Clone", parse("Vec<T>"), {{"T", "Clone"}});
    // impl<T: Eq + Hash> marker for HashSet is modeled at use sites.
    Env.addImpl("Hash", Arena.named("String"));
    Env.addImpl("Eq", Arena.named("String"));
    // impl BitOrder for Msb0 / Lsb0 only.
    Env.addImpl("BitOrder", Arena.named("Msb0"));
    Env.addImpl("BitOrder", Arena.named("Lsb0"));
    Env.addImpl("BitStore", Arena.prim("usize"));
    Env.addImpl("BitStore", Arena.prim("u8"));
  }
};

TEST_F(TraitFixture, PrimitivesImplementMarkers) {
  EXPECT_TRUE(Env.implements(Arena.prim("i32"), "Copy"));
  EXPECT_TRUE(Env.implements(Arena.prim("u8"), "Hash"));
  EXPECT_FALSE(Env.implements(Arena.prim("f64"), "Eq"));
  EXPECT_FALSE(Env.implements(Arena.prim("f32"), "Hash"));
}

TEST_F(TraitFixture, ConditionalImplRecurses) {
  EXPECT_TRUE(Env.implements(parse("Vec<String>"), "Clone"));
  EXPECT_TRUE(Env.implements(parse("Vec<Vec<i32>>"), "Clone"));
  EXPECT_FALSE(Env.implements(parse("Vec<Msb0>"), "Clone"));
}

TEST_F(TraitFixture, BitvecStyleOrderStoreTraits) {
  // The paper's bitvec bug hinges on BitVec<Msb0, usize> being valid while
  // BitVec<usize, Msb0> is a trait error.
  EXPECT_TRUE(Env.implements(Arena.named("Msb0"), "BitOrder"));
  EXPECT_FALSE(Env.implements(Arena.prim("usize"), "BitOrder"));
  EXPECT_TRUE(Env.implements(Arena.prim("usize"), "BitStore"));
  EXPECT_FALSE(Env.implements(Arena.named("Msb0"), "BitStore"));
}

TEST_F(TraitFixture, CopySemantics) {
  EXPECT_TRUE(Env.isCopy(Arena.prim("i32")));
  EXPECT_TRUE(Env.isCopy(parse("&String")));
  EXPECT_FALSE(Env.isCopy(parse("&mut String")));
  EXPECT_FALSE(Env.isCopy(Arena.named("String")));
  EXPECT_TRUE(Env.isCopy(parse("(i32, &String)")));
  EXPECT_FALSE(Env.isCopy(parse("(i32, String)")));
  EXPECT_FALSE(Env.isCopy(Arena.typeVar("T")));
}

TEST_F(TraitFixture, UnknownTraitFalse) {
  EXPECT_FALSE(Env.implements(Arena.named("String"), "Serialize"));
}

} // namespace
