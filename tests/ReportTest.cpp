//===--- ReportTest.cpp - Tests for the table renderer --------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/SyRustDriver.h"
#include "report/Table.h"

#include <gtest/gtest.h>

using namespace syrust::core;
using namespace syrust::crates;
using namespace syrust::report;

namespace {

TEST(TableTest, AlignsColumns) {
  Table T({"Name", "N"});
  T.addRow({"a", "1"});
  T.addRow({"longer", "23"});
  std::string Out = T.render();
  EXPECT_EQ(Out, "Name    N\n"
                 "----------\n"
                 "a       1\n"
                 "longer  23\n");
}

TEST(TableTest, ShortRowsPadAndTrailingSpacesTrimmed) {
  Table T({"A", "B", "C"});
  T.addRow({"x"});
  std::string Out = T.render();
  for (const std::string &Line :
       {std::string("A  B  C"), std::string("x")}) {
    EXPECT_NE(Out.find(Line + "\n"), std::string::npos) << Out;
  }
  // No line ends with a space.
  size_t Pos = 0;
  while ((Pos = Out.find('\n', Pos)) != std::string::npos) {
    if (Pos > 0) {
      EXPECT_NE(Out[Pos - 1], ' ');
    }
    ++Pos;
  }
}

TEST(TableTest, EmptyTableRendersHeaderOnly) {
  Table T({"Only"});
  EXPECT_EQ(T.render(), "Only\n----\n");
}

TEST(CurveSamplingTest, StrictlyMonotoneWithOneTerminalPoint) {
  // Unit costs put the simulated clock exactly on every sample boundary
  // AND on the budget end: each iteration advances by 1.0s, the 10s
  // budget with 5 samples has boundaries at 2,4,6,8,10. The historical
  // epilogue then duplicated the t=10 point; the fixed sampler must emit
  // a strictly monotone curve with exactly one terminal point.
  RunConfig C;
  C.BudgetSeconds = 10;
  C.CurveSamples = 5;
  C.SolveCost = 1.0;
  C.CompileCost = 0.0;
  C.ExecCost = 0.0;
  RunResult R = SyRustDriver(*findCrate("base16"), C).run();
  ASSERT_FALSE(R.Curve.empty());
  for (size_t I = 1; I < R.Curve.size(); ++I)
    EXPECT_GT(R.Curve[I].AtSeconds, R.Curve[I - 1].AtSeconds)
        << "duplicate/regressing sample at index " << I;
  int Terminal = 0;
  for (const CurvePoint &P : R.Curve)
    if (P.AtSeconds == R.ElapsedSeconds)
      ++Terminal;
  EXPECT_EQ(Terminal, 1);
  // The final in-budget boundary sample must not be dropped.
  EXPECT_EQ(R.Curve.back().AtSeconds, 10.0);
  EXPECT_EQ(R.Curve.size(), 5u);
}

TEST(FormatterTest, PercentFormatting) {
  EXPECT_EQ(fmtPercent(0.005), "< 0.01 %"); // Figure 6's "< 0.01 %".
  EXPECT_EQ(fmtPercent(0.0), "0.00 %");
  EXPECT_EQ(fmtPercent(10.87), "10.87 %");
  EXPECT_EQ(fmtShare(95.447), "95.45 %");
  EXPECT_EQ(fmtCount(1225952), "1225952");
}

} // namespace
