//===--- ReportTest.cpp - Tests for the table renderer --------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "report/Table.h"

#include <gtest/gtest.h>

using namespace syrust::report;

namespace {

TEST(TableTest, AlignsColumns) {
  Table T({"Name", "N"});
  T.addRow({"a", "1"});
  T.addRow({"longer", "23"});
  std::string Out = T.render();
  EXPECT_EQ(Out, "Name    N\n"
                 "----------\n"
                 "a       1\n"
                 "longer  23\n");
}

TEST(TableTest, ShortRowsPadAndTrailingSpacesTrimmed) {
  Table T({"A", "B", "C"});
  T.addRow({"x"});
  std::string Out = T.render();
  for (const std::string &Line :
       {std::string("A  B  C"), std::string("x")}) {
    EXPECT_NE(Out.find(Line + "\n"), std::string::npos) << Out;
  }
  // No line ends with a space.
  size_t Pos = 0;
  while ((Pos = Out.find('\n', Pos)) != std::string::npos) {
    if (Pos > 0) {
      EXPECT_NE(Out[Pos - 1], ' ');
    }
    ++Pos;
  }
}

TEST(TableTest, EmptyTableRendersHeaderOnly) {
  Table T({"Only"});
  EXPECT_EQ(T.render(), "Only\n----\n");
}

TEST(FormatterTest, PercentFormatting) {
  EXPECT_EQ(fmtPercent(0.005), "< 0.01 %"); // Figure 6's "< 0.01 %".
  EXPECT_EQ(fmtPercent(0.0), "0.00 %");
  EXPECT_EQ(fmtPercent(10.87), "10.87 %");
  EXPECT_EQ(fmtShare(95.447), "95.45 %");
  EXPECT_EQ(fmtCount(1225952), "1225952");
}

} // namespace
