//===--- ReportTest.cpp - Tests for the table renderer --------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/SyRustDriver.h"
#include "report/CoverageReport.h"
#include "report/Table.h"
#include "types/TypeParser.h"

#include <gtest/gtest.h>

using namespace syrust::core;
using namespace syrust::crates;
using namespace syrust::report;

namespace {

TEST(TableTest, AlignsColumns) {
  Table T({"Name", "N"});
  T.addRow({"a", "1"});
  T.addRow({"longer", "23"});
  std::string Out = T.render();
  EXPECT_EQ(Out, "Name    N\n"
                 "----------\n"
                 "a       1\n"
                 "longer  23\n");
}

TEST(TableTest, ShortRowsPadAndTrailingSpacesTrimmed) {
  Table T({"A", "B", "C"});
  T.addRow({"x"});
  std::string Out = T.render();
  for (const std::string &Line :
       {std::string("A  B  C"), std::string("x")}) {
    EXPECT_NE(Out.find(Line + "\n"), std::string::npos) << Out;
  }
  // No line ends with a space.
  size_t Pos = 0;
  while ((Pos = Out.find('\n', Pos)) != std::string::npos) {
    if (Pos > 0) {
      EXPECT_NE(Out[Pos - 1], ' ');
    }
    ++Pos;
  }
}

TEST(TableTest, EmptyTableRendersHeaderOnly) {
  Table T({"Only"});
  EXPECT_EQ(T.render(), "Only\n----\n");
}

TEST(CurveSamplingTest, StrictlyMonotoneWithOneTerminalPoint) {
  // Unit costs put the simulated clock exactly on every sample boundary
  // AND on the budget end: each iteration advances by 1.0s, the 10s
  // budget with 5 samples has boundaries at 2,4,6,8,10. The historical
  // epilogue then duplicated the t=10 point; the fixed sampler must emit
  // a strictly monotone curve with exactly one terminal point.
  RunConfig C;
  C.BudgetSeconds = 10;
  C.CurveSamples = 5;
  C.SolveCost = 1.0;
  C.CompileCost = 0.0;
  C.ExecCost = 0.0;
  RunResult R = SyRustDriver(*findCrate("base16"), C).run();
  ASSERT_FALSE(R.Curve.empty());
  for (size_t I = 1; I < R.Curve.size(); ++I)
    EXPECT_GT(R.Curve[I].AtSeconds, R.Curve[I - 1].AtSeconds)
        << "duplicate/regressing sample at index " << I;
  int Terminal = 0;
  for (const CurvePoint &P : R.Curve)
    if (P.AtSeconds == R.ElapsedSeconds)
      ++Terminal;
  EXPECT_EQ(Terminal, 1);
  // The final in-budget boundary sample must not be dropped.
  EXPECT_EQ(R.Curve.back().AtSeconds, 10.0);
  EXPECT_EQ(R.Curve.size(), 5u);
}

TEST(FormatterTest, PercentFormatting) {
  EXPECT_EQ(fmtPercent(0.005), "< 0.01 %"); // Figure 6's "< 0.01 %".
  EXPECT_EQ(fmtPercent(0.0), "0.00 %");
  EXPECT_EQ(fmtPercent(10.87), "10.87 %");
  EXPECT_EQ(fmtShare(95.447), "95.45 %");
  EXPECT_EQ(fmtCount(1225952), "1225952");
}

//===----------------------------------------------------------------------===//
// Never-covered edge listing: degree-ranked, order fully pinned.
//===----------------------------------------------------------------------===//

TEST(CoverageReportTest, NeverCoveredListingIsDegreeRankedAndPinned) {
  // Three APIs whose graph has four edges with distinct endpoint-degree
  // sums: mk() -> String, use1(String) -> bool, and the String-to-String
  // hub use2. Degrees: mk 2, use1 2, use2 4 (a self-edge counts both
  // endpoints), so the ranked order is
  //   use2->use2 (8), mk->use2 (6, lower edge index wins the tie),
  //   use2->use1 (6), mk->use1 (4)
  // - a golden pin of both the ranking and the index tie-break, which
  // replaced the old first-N-by-index listing.
  syrust::types::TypeArena Arena;
  syrust::types::TypeParser Parser{Arena, {}};
  syrust::api::ApiDatabase Db;
  auto Add = [&](const char *Name, const char *In, const char *Out) {
    syrust::api::ApiSig Sig;
    Sig.Name = Name;
    if (In)
      Sig.Inputs.push_back(Parser.parse(In));
    Sig.Output = Parser.parse(Out);
    return Db.add(std::move(Sig));
  };
  Add("mk", nullptr, "String");
  Add("use1", "String", "bool");
  Add("use2", "String", "String");
  syrust::types::CompatCache Cache;
  syrust::api::DependencyGraph Graph =
      syrust::api::buildDependencyGraph(Db, Arena, Cache);
  ASSERT_EQ(Graph.numEdges(), 4u);

  ApiCoverageEntry E;
  E.Crate = "toy";
  E.Data.NodesTotal = Graph.numNodes();
  E.Data.EdgesTotal = Graph.numEdges();
  E.Data.NodeBits.assign((Graph.numNodes() + 7) / 8, 0);
  E.Data.EdgeBits.assign((Graph.numEdges() + 7) / 8, 0);
  CrateApiResolver Resolver = [&](const std::string &) {
    return CrateApiView{&Db, &Graph};
  };

  std::string Full = renderApiCoverage({E}, Resolver);
  size_t Hub = Full.find("use2 -> use2#0");
  size_t MkHub = Full.find("mk -> use2#0");
  size_t HubUse1 = Full.find("use2 -> use1#0");
  size_t MkUse1 = Full.find("mk -> use1#0");
  ASSERT_NE(Hub, std::string::npos) << Full;
  ASSERT_NE(MkHub, std::string::npos);
  ASSERT_NE(HubUse1, std::string::npos);
  ASSERT_NE(MkUse1, std::string::npos);
  EXPECT_LT(Hub, MkHub);
  EXPECT_LT(MkHub, HubUse1);
  EXPECT_LT(HubUse1, MkUse1);

  // Truncation takes the ranked top N, not the first N edge indices,
  // and says so.
  CoverageReportOptions Top2;
  Top2.TopNeverCovered = 2;
  std::string Cut = renderApiCoverage({E}, Resolver, Top2);
  EXPECT_NE(Cut.find("(top 2 by endpoint degree)"), std::string::npos)
      << Cut;
  EXPECT_NE(Cut.find("use2 -> use2#0"), std::string::npos);
  EXPECT_NE(Cut.find("mk -> use2#0"), std::string::npos);
  EXPECT_EQ(Cut.find("mk -> use1#0"), std::string::npos);

  // The ranking is a pure function of the document: rendering twice is
  // byte-identical.
  EXPECT_EQ(Full, renderApiCoverage({E}, Resolver));
}

} // namespace
