//===--- CheckpointTest.cpp - Campaign checkpoint/resume tests ------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
//
// The checkpoint contract: a campaign killed at any cell boundary (or
// mid-append — SIGKILL tears the final line) resumes to an aggregate
// byte-identical to an uninterrupted run's. These tests drive the
// pieces — fingerprints, the JSONL writer/loader, the torn-tail rule,
// and RunResult JSON round-tripping — then prove the headline property
// end to end through CampaignRunner::preload.
//
//===----------------------------------------------------------------------===//

#include "campaign/Checkpoint.h"

#include "campaign/Campaign.h"
#include "core/ResultJson.h"
#include "core/Session.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace syrust;
using namespace syrust::campaign;

namespace {

CampaignSpec smallSpec() {
  CampaignSpec Spec;
  Spec.Crates = {"slab", "bytes"};
  Spec.SeedBegin = 2021;
  Spec.SeedEnd = 2022;
  Spec.Variants = {"base", "no-semantic"};
  Spec.Base.BudgetSeconds = 8;
  return Spec;
}

std::string tempPath(const std::string &Name) {
  return testing::TempDir() + "/" + Name;
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

TEST(CheckpointTest, FingerprintIgnoresPoolWidthOnly) {
  CampaignSpec Spec = smallSpec();
  const std::string Base = specFingerprint(Spec);
  EXPECT_EQ(16u, Base.size());

  // Jobs and Trace never affect results, so they must not affect the
  // fingerprint: a checkpoint taken at --jobs 8 resumes at --jobs 1.
  CampaignSpec Wider = smallSpec();
  Wider.Jobs = 8;
  Wider.Trace = true;
  EXPECT_EQ(Base, specFingerprint(Wider));

  // Everything result-determining must perturb it.
  CampaignSpec C = smallSpec();
  C.Crates = {"slab"};
  EXPECT_NE(Base, specFingerprint(C));
  C = smallSpec();
  C.SeedEnd = 2023;
  EXPECT_NE(Base, specFingerprint(C));
  C = smallSpec();
  C.Variants = {"base"};
  EXPECT_NE(Base, specFingerprint(C));
  C = smallSpec();
  C.Base.BudgetSeconds = 9;
  EXPECT_NE(Base, specFingerprint(C));
  C = smallSpec();
  C.Base.Portfolio = true;
  EXPECT_NE(Base, specFingerprint(C));
}

TEST(CheckpointTest, ResultJsonRoundTripsByteIdentically) {
  // The property the whole design leans on: parsing a rendered result
  // and re-rendering it reproduces the bytes. (Object keys render
  // sorted; numbers render canonically.)
  core::Session S;
  core::RunConfig Config;
  Config.BudgetSeconds = 8;
  core::RunResult R = S.runOne("slab", Config);

  core::ResultJsonOptions NoWall;
  NoWall.HostWallTime = false;
  const std::string Once = core::resultToJson(R, NoWall).dump();
  json::ParseResult P = json::parse(Once);
  ASSERT_TRUE(P.Ok) << P.Error;
  core::RunResult Back;
  std::string Err;
  ASSERT_TRUE(core::resultFromJson(P.Val, Back, Err)) << Err;
  EXPECT_EQ(Once, core::resultToJson(Back, NoWall).dump());
}

TEST(CheckpointTest, WriterLoaderRoundTrip) {
  core::Session S;
  CampaignSpec Spec = smallSpec();
  const std::string Path = tempPath("ckpt_roundtrip.jsonl");
  std::remove(Path.c_str());

  // Run the campaign once, checkpointing every cell.
  CampaignRunner Runner(S, Spec);
  CheckpointWriter W;
  std::string Err;
  ASSERT_TRUE(W.open(Path, Spec, Err)) << Err;
  size_t Appended = 0;
  Runner.onJobCheckpoint(
      [&](const CampaignJobResult &JR,
          const std::map<std::string, uint64_t> &Deltas) {
        W.append(JR, Deltas);
        ++Appended;
      });
  CampaignResult Full = Runner.run();
  W.close();
  ASSERT_EQ(Full.Jobs.size(), Appended);

  CheckpointData Data;
  ASSERT_TRUE(loadCheckpoint(Path, Data, Err)) << Err;
  EXPECT_EQ(specFingerprint(Spec), Data.Fingerprint);
  EXPECT_EQ(Full.Jobs.size(), Data.Cells.size());
  EXPECT_TRUE(Data.TornTail.empty());

  // Every recovered cell re-renders to the same result document.
  for (const auto &[Index, Cell] : Data.Cells) {
    ASSERT_LT(Index, Full.Jobs.size());
    const CampaignJobResult &JR = Full.Jobs[Index];
    EXPECT_EQ(core::resultToJson(JR.Result).dump(),
              core::resultToJson(Cell.Result).dump());
  }
}

TEST(CheckpointTest, MissingFileAndBadHeaderAreErrors) {
  CheckpointData Data;
  std::string Err;
  EXPECT_FALSE(loadCheckpoint(tempPath("ckpt_nope.jsonl"), Data, Err));

  const std::string Bad = tempPath("ckpt_bad_header.jsonl");
  {
    std::ofstream Out(Bad, std::ios::binary);
    Out << "{\"kind\":\"something_else\"}\n";
  }
  EXPECT_FALSE(loadCheckpoint(Bad, Data, Err));
  EXPECT_NE(std::string::npos, Err.find("header"));
}

TEST(CheckpointTest, TornTailIsToleratedNotFatal) {
  core::Session S;
  CampaignSpec Spec = smallSpec();
  const std::string Path = tempPath("ckpt_torn.jsonl");
  std::remove(Path.c_str());

  CampaignRunner Runner(S, Spec);
  CheckpointWriter W;
  std::string Err;
  ASSERT_TRUE(W.open(Path, Spec, Err)) << Err;
  Runner.onJobCheckpoint(
      [&](const CampaignJobResult &JR,
          const std::map<std::string, uint64_t> &Deltas) {
        W.append(JR, Deltas);
      });
  Runner.run();
  W.close();

  CheckpointData Whole;
  ASSERT_TRUE(loadCheckpoint(Path, Whole, Err)) << Err;
  const size_t All = Whole.Cells.size();
  ASSERT_GE(All, 2u);

  // SIGKILL mid-append: chop the file mid-way through its last line.
  std::string Bytes = slurp(Path);
  ASSERT_FALSE(Bytes.empty());
  std::string Torn = Bytes.substr(0, Bytes.size() - Bytes.size() / 8);
  ASSERT_NE(Torn, Bytes);
  {
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out << Torn;
  }
  CheckpointData Partial;
  ASSERT_TRUE(loadCheckpoint(Path, Partial, Err)) << Err;
  EXPECT_LT(Partial.Cells.size(), All);
  EXPECT_FALSE(Partial.TornTail.empty());
}

TEST(CheckpointTest, ResumedAggregateIsByteIdentical) {
  core::Session S;
  CampaignSpec Spec = smallSpec();

  // The uninterrupted truth.
  CampaignRunner Uninterrupted(S, Spec);
  CampaignResult FullRun = Uninterrupted.run();
  const std::string Truth = campaignToJson(Spec, FullRun).dump();

  // An interrupted run: checkpoint every cell, then pretend the process
  // died and only a prefix of cells (plus a torn tail) survived.
  const std::string Path = tempPath("ckpt_resume.jsonl");
  std::remove(Path.c_str());
  {
    CampaignRunner First(S, Spec);
    CheckpointWriter W;
    std::string Err;
    ASSERT_TRUE(W.open(Path, Spec, Err)) << Err;
    First.onJobCheckpoint(
        [&](const CampaignJobResult &JR,
            const std::map<std::string, uint64_t> &Deltas) {
          W.append(JR, Deltas);
        });
    First.run();
    W.close();
  }
  std::string Bytes = slurp(Path);
  {
    // Keep the header and roughly half the cells; tear the last kept
    // line in two to simulate the kill landing mid-append.
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out << Bytes.substr(0, Bytes.size() / 2 + 3);
  }

  CheckpointData Data;
  std::string Err;
  ASSERT_TRUE(loadCheckpoint(Path, Data, Err)) << Err;
  ASSERT_EQ(specFingerprint(Spec), Data.Fingerprint);
  ASSERT_GT(Data.Cells.size(), 0u);
  ASSERT_LT(Data.Cells.size(), FullRun.Jobs.size());

  // Resume — at a different pool width, which must not matter.
  CampaignSpec Resumed = Spec;
  Resumed.Jobs = 3;
  CampaignRunner Second(S, Resumed);
  Second.preload(std::move(Data.Cells));
  CampaignResult Resume = Second.run();
  EXPECT_EQ(Truth, campaignToJson(Spec, Resume).dump());
}

TEST(CheckpointTest, PreloadedCellsDoNotReExecute) {
  core::Session S;
  CampaignSpec Spec = smallSpec();

  const std::string Path = tempPath("ckpt_noreexec.jsonl");
  std::remove(Path.c_str());
  CampaignRunner First(S, Spec);
  CheckpointWriter W;
  std::string Err;
  ASSERT_TRUE(W.open(Path, Spec, Err)) << Err;
  First.onJobCheckpoint([&](const CampaignJobResult &JR,
                            const std::map<std::string, uint64_t> &D) {
    W.append(JR, D);
  });
  CampaignResult FullRun = First.run();
  W.close();

  CheckpointData Data;
  ASSERT_TRUE(loadCheckpoint(Path, Data, Err)) << Err;
  ASSERT_EQ(FullRun.Jobs.size(), Data.Cells.size());

  // Everything preloaded: the second run must execute zero live jobs.
  CampaignRunner Second(S, Spec);
  Second.preload(std::move(Data.Cells));
  size_t LiveJobs = 0;
  Second.onJobCheckpoint(
      [&](const CampaignJobResult &,
          const std::map<std::string, uint64_t> &) { ++LiveJobs; });
  CampaignResult Resume = Second.run();
  EXPECT_EQ(0u, LiveJobs);
  EXPECT_EQ(campaignToJson(Spec, FullRun).dump(),
            campaignToJson(Spec, Resume).dump());
}

} // namespace
