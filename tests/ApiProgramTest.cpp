//===--- ApiProgramTest.cpp - Tests for API db and program rendering ------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "api/ApiDatabase.h"
#include "program/Program.h"
#include "types/TypeParser.h"

#include <gtest/gtest.h>

using namespace syrust;
using namespace syrust::api;
using namespace syrust::program;
using namespace syrust::types;

namespace {

class ApiFixture : public ::testing::Test {
protected:
  TypeArena Arena;
  TypeParser Parser{Arena, {"T"}};
  ApiDatabase Db;

  const Type *parse(const std::string &S) {
    const Type *T = Parser.parse(S);
    EXPECT_NE(T, nullptr) << Parser.error();
    return T;
  }

  ApiId addApi(const std::string &Name, std::vector<std::string> Ins,
               const std::string &Out) {
    ApiSig Sig;
    Sig.Name = Name;
    for (const auto &I : Ins)
      Sig.Inputs.push_back(parse(I));
    Sig.Output = parse(Out);
    return Db.add(std::move(Sig));
  }
};

TEST_F(ApiFixture, BuiltinsHaveExpectedShapes) {
  auto Ids = addBuiltinApis(Db, Arena);
  ASSERT_EQ(Ids.size(), 3u);
  const ApiSig &LetMut = Db.get(Ids[0]);
  EXPECT_EQ(LetMut.Builtin, BuiltinKind::LetMut);
  EXPECT_EQ(LetMut.Inputs[0], LetMut.Output);
  const ApiSig &Borrow = Db.get(Ids[1]);
  EXPECT_TRUE(Borrow.Output->isSharedRef());
  EXPECT_TRUE(Borrow.propagatesLifetime());
  const ApiSig &BorrowMut = Db.get(Ids[2]);
  EXPECT_TRUE(BorrowMut.Output->isMutRef());
}

TEST_F(ApiFixture, PolymorphismDetection) {
  ApiId New = addApi("Vec::new", {}, "Vec<T>");
  ApiId Push = addApi("Vec::push", {"&mut Vec<T>", "T"}, "()");
  ApiId Len = addApi("Vec::len", {"&Vec<i32>"}, "usize");
  EXPECT_TRUE(Db.get(New).isPolymorphic());
  EXPECT_TRUE(Db.get(Push).isPolymorphic());
  EXPECT_FALSE(Db.get(Len).isPolymorphic());
  EXPECT_EQ(Db.get(Push).typeVarNames(),
            std::vector<std::string>{"T"});
}

TEST_F(ApiFixture, BanningRemovesFromActive) {
  ApiId A = addApi("a", {}, "i32");
  ApiId B = addApi("b", {}, "i32");
  EXPECT_EQ(Db.activeIds().size(), 2u);
  Db.ban(A);
  auto Active = Db.activeIds();
  ASSERT_EQ(Active.size(), 1u);
  EXPECT_EQ(Active[0], B);
  EXPECT_TRUE(Db.isBanned(A));
}

TEST_F(ApiFixture, BlockedCombos) {
  ApiId Pop = addApi("Vec::pop", {"&mut Vec<T>"}, "Option<T>");
  std::vector<const Type *> Combo{parse("&mut Vec<i32>")};
  EXPECT_FALSE(Db.isComboBlocked(Pop, Combo));
  Db.blockCombo(Pop, Combo);
  EXPECT_TRUE(Db.isComboBlocked(Pop, Combo));
  EXPECT_FALSE(Db.isComboBlocked(Pop, {parse("&mut Vec<u8>")}));
}

TEST_F(ApiFixture, FindDuplicate) {
  ApiId A = addApi("Vec::pop", {"&mut Vec<i32>"}, "Option<i32>");
  ApiSig Copy;
  Copy.Name = "Vec::pop";
  Copy.Inputs = {parse("&mut Vec<i32>")};
  Copy.Output = parse("Option<i32>");
  EXPECT_EQ(Db.findDuplicate(Copy), A);
  Copy.Output = parse("Option<u8>");
  EXPECT_EQ(Db.findDuplicate(Copy), ApiIdInvalid);
}

TEST_F(ApiFixture, ProgramRendering) {
  auto Builtins = addBuiltinApis(Db, Arena);
  ApiId Push = addApi("Vec::push", {"&mut Vec<String>", "String"}, "()");
  ApiId Parts = addApi("Vec::into_raw_parts", {"Vec<String>"},
                       "(usize, usize, usize)");

  Program P;
  P.Inputs.push_back({"s", parse("String")});
  P.Inputs.push_back({"v", parse("Vec<String>")});
  // let mut vm = v;
  P.Stmts.push_back(Stmt{Builtins[0], {1}, 2, parse("Vec<String>")});
  // let vr = &mut vm;
  P.Stmts.push_back(Stmt{Builtins[2], {2}, 3, parse("&mut Vec<String>")});
  // Vec::push(vr, s);
  P.Stmts.push_back(Stmt{Push, {3, 0}, 4, Arena.unit()});
  // let v3 : (usize,usize,usize) = Vec::into_raw_parts(vm);
  P.Stmts.push_back(Stmt{Parts, {2}, 5, parse("(usize, usize, usize)")});

  std::string Src = P.render(Db);
  EXPECT_EQ(Src, "let mut v1 = v;\n"
                 "let v2 = &mut v1;\n"
                 "Vec::push(v2, s);\n"
                 "let v4 : (usize, usize, usize) = "
                 "Vec::into_raw_parts(v1);\n");
}

TEST_F(ApiFixture, ProgramHashDistinguishesWiring) {
  ApiId F = addApi("f", {"i32", "i32"}, "i32");
  Program A, B;
  A.Inputs = {{"x", parse("i32")}, {"y", parse("i32")}};
  B.Inputs = A.Inputs;
  A.Stmts.push_back(Stmt{F, {0, 1}, 2, parse("i32")});
  B.Stmts.push_back(Stmt{F, {1, 0}, 2, parse("i32")});
  EXPECT_NE(A.hash(), B.hash());
  Program A2 = A;
  EXPECT_EQ(A.hash(), A2.hash());
}

TEST_F(ApiFixture, VarNames) {
  Program P;
  P.Inputs = {{"s", parse("String")}};
  P.Stmts.push_back(Stmt{0, {}, 1, nullptr});
  EXPECT_EQ(P.varName(0), "s");
  EXPECT_EQ(P.varName(1), "v1");
  EXPECT_EQ(P.numVars(), 2);
}

} // namespace
