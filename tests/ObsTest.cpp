//===--- ObsTest.cpp - Tests for the flight recorder ----------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Recorder.h"

#include "support/Json.h"
#include "support/SimClock.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

using namespace syrust;
using namespace syrust::obs;

namespace {

//===----------------------------------------------------------------------===//
// Counter / Gauge
//===----------------------------------------------------------------------===//

TEST(CounterTest, AccumulatesIncrements) {
  Counter C;
  EXPECT_EQ(C.value(), 0u);
  C.inc();
  C.inc(41);
  EXPECT_EQ(C.value(), 42u);
}

TEST(CounterTest, SaturatesInsteadOfWrapping) {
  Counter C;
  C.inc(UINT64_MAX - 1);
  C.inc(10); // Would wrap; must stick at the max.
  EXPECT_EQ(C.value(), UINT64_MAX);
  C.inc(); // Stays saturated.
  EXPECT_EQ(C.value(), UINT64_MAX);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge G;
  EXPECT_EQ(G.value(), 0.0);
  G.set(3.5);
  G.set(-2.0);
  EXPECT_EQ(G.value(), -2.0);
}

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

TEST(HistogramTest, BucketEdgesAreLogSpaced) {
  Histogram H(1.0, 2.0, 4); // Edges 1, 2, 4, 8 + overflow.
  ASSERT_EQ(H.numEdges(), 4u);
  EXPECT_EQ(H.upperEdge(0), 1.0);
  EXPECT_EQ(H.upperEdge(1), 2.0);
  EXPECT_EQ(H.upperEdge(2), 4.0);
  EXPECT_EQ(H.upperEdge(3), 8.0);
}

TEST(HistogramTest, ObservationsLandInInclusiveBuckets) {
  Histogram H(1.0, 2.0, 4);
  H.observe(0.0); // <= 1 -> bucket 0
  H.observe(1.0); // boundary is inclusive -> bucket 0
  H.observe(1.5); // <= 2 -> bucket 1
  H.observe(8.0); // boundary -> bucket 3
  H.observe(9.0); // > last edge -> overflow
  EXPECT_EQ(H.bucketCount(0), 2u);
  EXPECT_EQ(H.bucketCount(1), 1u);
  EXPECT_EQ(H.bucketCount(2), 0u);
  EXPECT_EQ(H.bucketCount(3), 1u);
  EXPECT_EQ(H.bucketCount(4), 1u); // Overflow slot.
  EXPECT_EQ(H.count(), 5u);
  EXPECT_DOUBLE_EQ(H.sum(), 19.5);
}

//===----------------------------------------------------------------------===//
// MetricsRegistry
//===----------------------------------------------------------------------===//

TEST(MetricsRegistryTest, LookupCreatesAndReturnsStableRefs) {
  MetricsRegistry M;
  Counter &A = M.counter("x");
  A.inc(3);
  EXPECT_EQ(M.counter("x").value(), 3u);
  EXPECT_EQ(&M.counter("x"), &A);
}

TEST(MetricsRegistryTest, SnapshotCadenceProducesOneLineEach) {
  MetricsRegistry M;
  M.counter("tests").inc(5);
  M.snapshot(60.0);
  M.counter("tests").inc(5);
  M.snapshot(120.0);
  EXPECT_EQ(M.numSnapshots(), 2u);

  // JSONL: one valid JSON object per line, cumulative counters, the
  // snapshot time under "t".
  std::string Jsonl = M.jsonl();
  size_t Newline = Jsonl.find('\n');
  ASSERT_NE(Newline, std::string::npos);
  json::ParseResult L1 = json::parse(Jsonl.substr(0, Newline));
  json::ParseResult L2 =
      json::parse(Jsonl.substr(Newline + 1,
                               Jsonl.size() - Newline - 2));
  ASSERT_TRUE(L1.Ok) << L1.Error;
  ASSERT_TRUE(L2.Ok) << L2.Error;
  EXPECT_EQ(L1.Val.get("t").asDouble(), 60.0);
  EXPECT_EQ(L1.Val.get("counters").get("tests").asInt(), 5);
  EXPECT_EQ(L2.Val.get("t").asDouble(), 120.0);
  EXPECT_EQ(L2.Val.get("counters").get("tests").asInt(), 10);
}

TEST(MetricsRegistryTest, SnapshotCapturesHistogramShape) {
  MetricsRegistry M;
  M.histogram("lat", 1.0, 2.0, 3).observe(2.0);
  json::Value V = M.snapshotValue(1.0);
  const json::Value &H = V.get("histograms").get("lat");
  EXPECT_EQ(H.get("count").asInt(), 1);
  ASSERT_EQ(H.get("edges").size(), 3u);
  ASSERT_EQ(H.get("buckets").size(), 4u);
  EXPECT_EQ(H.get("buckets").at(1).asInt(), 1);
}

//===----------------------------------------------------------------------===//
// Tracer
//===----------------------------------------------------------------------===//

TEST(TracerTest, StampsEventsWithSimulatedTime) {
  SimClock Clock;
  Tracer T;
  T.bindClock(&Clock);
  T.begin("run", "driver");
  Clock.charge(0.5);
  T.instant("tick", "driver");
  Clock.charge(0.5);
  T.end("run", "driver");
  T.bindClock(nullptr);
  EXPECT_EQ(T.numEvents(), 3u);

  json::ParseResult P = json::parse(T.chromeJson());
  ASSERT_TRUE(P.Ok) << P.Error;
  const json::Value &Events = P.Val.get("traceEvents");
  ASSERT_EQ(Events.size(), 3u);
  EXPECT_EQ(Events.at(0).get("ph").asString(), "B");
  EXPECT_EQ(Events.at(0).get("ts").asDouble(), 0.0);
  EXPECT_EQ(Events.at(1).get("ph").asString(), "i");
  EXPECT_EQ(Events.at(1).get("ts").asDouble(), 500000.0); // Microseconds.
  EXPECT_EQ(Events.at(2).get("ph").asString(), "E");
  EXPECT_EQ(Events.at(2).get("ts").asDouble(), 1000000.0);
}

TEST(TracerTest, CompleteSpanCarriesDurationAndArgs) {
  Tracer T;
  T.complete("stage", "driver", 1.0, 0.25,
             ArgList().add("candidate", uint64_t(7)).add("ok", true));
  json::ParseResult P = json::parse(T.chromeJson());
  ASSERT_TRUE(P.Ok) << P.Error;
  const json::Value &E = P.Val.get("traceEvents").at(0);
  EXPECT_EQ(E.get("ph").asString(), "X");
  EXPECT_EQ(E.get("ts").asDouble(), 1000000.0);
  EXPECT_EQ(E.get("dur").asDouble(), 250000.0);
  EXPECT_EQ(E.get("args").get("candidate").asInt(), 7);
  EXPECT_TRUE(E.get("args").get("ok").asBool());
}

TEST(TracerTest, UnboundClockFreezesAtLastReading) {
  SimClock Clock;
  Tracer T;
  T.bindClock(&Clock);
  Clock.charge(2.0);
  T.bindClock(nullptr); // Clock may be destroyed after this point.
  T.instant("late", "driver");
  json::ParseResult P = json::parse(T.chromeJson());
  ASSERT_TRUE(P.Ok) << P.Error;
  EXPECT_EQ(P.Val.get("traceEvents").at(0).get("ts").asDouble(),
            2000000.0);
}

TEST(TracerTest, WallClockIsOptInOnly) {
  Tracer NoWall;
  NoWall.instant("e", "c");
  EXPECT_EQ(NoWall.chromeJson().find("wall_us"), std::string::npos);

  Tracer Wall(/*CaptureWall=*/true);
  Wall.instant("e", "c");
  EXPECT_NE(Wall.chromeJson().find("wall_us"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Recorder facade
//===----------------------------------------------------------------------===//

TEST(RecorderTest, HalvesAreIndependentlyDisableable) {
  Recorder::Options O;
  O.Trace = false;
  O.Metrics = true;
  Recorder R(O);
  R.instant("dropped", "c");
  R.count("kept");
  EXPECT_EQ(R.tracer().numEvents(), 0u);
  EXPECT_EQ(R.metrics().counter("kept").value(), 1u);

  O.Trace = true;
  O.Metrics = false;
  Recorder R2(O);
  R2.instant("kept", "c");
  R2.count("dropped");
  R2.snapshotMetrics(1.0);
  EXPECT_EQ(R2.tracer().numEvents(), 1u);
  EXPECT_EQ(R2.metrics().counter("dropped").value(), 0u);
  EXPECT_EQ(R2.metrics().numSnapshots(), 0u);
}

} // namespace
