//===--- CampaignTest.cpp - Campaign engine tests -------------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The campaign engine's contract: a `(crate, seed, variant)` matrix
/// fanned across a work-stealing pool must merge deterministically — the
/// aggregate JSON and the per-stage metric totals are byte-identical for
/// any pool width — and both RunConfig::validate() and
/// CampaignSpec::validate() must reject each bad field with a specific
/// message.
///
//===----------------------------------------------------------------------===//

#include "campaign/CampaignRunner.h"
#include "core/ResultJson.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <vector>

using namespace syrust;
using namespace syrust::campaign;
using namespace syrust::core;

namespace {

/// A small but non-trivial budget: enough simulated time for every stage
/// of the pipeline to run while keeping the whole matrix fast.
RunConfig quickBase() {
  RunConfig C;
  C.BudgetSeconds = 30;
  C.SnapshotInterval = 10;
  return C;
}

CampaignSpec quadSpec() {
  CampaignSpec Spec;
  Spec.Crates = {"slab", "base16", "bytes", "smallvec"};
  Spec.SeedBegin = 2021;
  Spec.SeedEnd = 2022;
  Spec.Base = quickBase();
  return Spec;
}

bool contains(const std::vector<std::string> &Errors,
              const std::string &Needle) {
  for (const std::string &E : Errors)
    if (E.find(Needle) != std::string::npos)
      return true;
  return false;
}

//===----------------------------------------------------------------------===//
// RunConfig::validate - one specific message per rejected field.
//===----------------------------------------------------------------------===//

TEST(RunConfigValidateTest, DefaultConfigIsValid) {
  EXPECT_TRUE(RunConfig().validate().empty());
}

TEST(RunConfigValidateTest, RejectsNegativeBudget) {
  RunConfig C;
  C.BudgetSeconds = -1;
  std::vector<std::string> E = C.validate();
  ASSERT_EQ(E.size(), 1u);
  EXPECT_EQ(E[0], "RunConfig.BudgetSeconds must be non-negative, got -1");
}

TEST(RunConfigValidateTest, RejectsZeroApis) {
  RunConfig C;
  C.NumApis = 0;
  std::vector<std::string> E = C.validate();
  ASSERT_EQ(E.size(), 1u);
  EXPECT_EQ(E[0], "RunConfig.NumApis must be at least 1, got 0");
}

TEST(RunConfigValidateTest, RejectsZeroEagerCap) {
  RunConfig C;
  C.EagerCap = 0;
  std::vector<std::string> E = C.validate();
  ASSERT_EQ(E.size(), 1u);
  EXPECT_EQ(E[0], "RunConfig.EagerCap must be nonzero (a zero cap would "
                  "forbid every eager instantiation)");
}

TEST(RunConfigValidateTest, RejectsNegativeStageCosts) {
  RunConfig C;
  C.SolveCost = -0.5;
  C.CompileCost = -1;
  C.ExecCost = -2;
  std::vector<std::string> E = C.validate();
  ASSERT_EQ(E.size(), 3u);
  EXPECT_TRUE(contains(E, "RunConfig.SolveCost must be non-negative"));
  EXPECT_TRUE(contains(E, "RunConfig.CompileCost must be non-negative"));
  EXPECT_TRUE(contains(E, "RunConfig.ExecCost must be non-negative"));
}

TEST(RunConfigValidateTest, RejectsNonPositiveSnapshotInterval) {
  RunConfig C;
  C.SnapshotInterval = 0;
  std::vector<std::string> E = C.validate();
  ASSERT_EQ(E.size(), 1u);
  EXPECT_TRUE(contains(E, "RunConfig.SnapshotInterval must be positive"));
}

TEST(RunConfigValidateTest, RejectsDegenerateCurve) {
  RunConfig C;
  C.CurveSamples = 1;
  std::vector<std::string> E = C.validate();
  ASSERT_EQ(E.size(), 1u);
  EXPECT_TRUE(contains(E, "RunConfig.CurveSamples must be at least 2"));
}

TEST(RunConfigValidateTest, ReportsEveryProblemAtOnce) {
  RunConfig C;
  C.BudgetSeconds = -1;
  C.NumApis = -3;
  C.CurveSamples = 0;
  EXPECT_EQ(C.validate().size(), 3u);
}

TEST(RunConfigValidateTest, RejectsBiasWithoutCoverageTracking) {
  RunConfig C;
  C.BiasCoverage = true;
  EXPECT_TRUE(C.validate().empty()); // Tracking is on by default.
  C.TrackApiCoverage = false;
  std::vector<std::string> E = C.validate();
  ASSERT_EQ(E.size(), 1u);
  EXPECT_TRUE(contains(E, "BiasCoverage requires TrackApiCoverage"));
}

//===----------------------------------------------------------------------===//
// CampaignSpec::validate.
//===----------------------------------------------------------------------===//

TEST(CampaignSpecValidateTest, QuadSpecIsValid) {
  Session S;
  EXPECT_TRUE(quadSpec().validate(S).empty());
}

TEST(CampaignSpecValidateTest, RejectsEmptyCrateList) {
  Session S;
  CampaignSpec Spec = quadSpec();
  Spec.Crates.clear();
  EXPECT_TRUE(contains(Spec.validate(S),
                       "CampaignSpec.Crates must name at least one"));
}

TEST(CampaignSpecValidateTest, RejectsUnknownAndDuplicateCrates) {
  Session S;
  CampaignSpec Spec = quadSpec();
  Spec.Crates = {"slab", "slab", "no-such-crate"};
  std::vector<std::string> E = Spec.validate(S);
  EXPECT_TRUE(contains(E, "lists 'slab' more than once"));
  EXPECT_TRUE(contains(E, "unknown crate 'no-such-crate'"));
}

TEST(CampaignSpecValidateTest, RejectsEmptySeedRange) {
  Session S;
  CampaignSpec Spec = quadSpec();
  Spec.SeedBegin = 5;
  Spec.SeedEnd = 4;
  EXPECT_TRUE(contains(Spec.validate(S), "seed range is empty"));
}

TEST(CampaignSpecValidateTest, RejectsUnknownVariant) {
  Session S;
  CampaignSpec Spec = quadSpec();
  Spec.Variants = {"base", "turbo"};
  std::vector<std::string> E = Spec.validate(S);
  EXPECT_TRUE(contains(E, "unknown variant 'turbo'"));
  EXPECT_TRUE(contains(E, "known: base, no-semantic, eager"));
  // The known-variants list must track the full applyVariant vocabulary
  // (it used to silently omit no-graph-prune).
  EXPECT_TRUE(contains(E, "no-graph-prune"));
  EXPECT_TRUE(contains(E, "coverage-bias"));
}

TEST(CampaignSpecValidateTest, RejectsNonPositiveJobs) {
  Session S;
  CampaignSpec Spec = quadSpec();
  Spec.Jobs = 0;
  EXPECT_TRUE(
      contains(Spec.validate(S), "CampaignSpec.Jobs must be at least 1"));
}

TEST(CampaignSpecValidateTest, SurfacesBaseConfigErrors) {
  Session S;
  CampaignSpec Spec = quadSpec();
  Spec.Base.BudgetSeconds = -10;
  EXPECT_TRUE(contains(Spec.validate(S), "RunConfig.BudgetSeconds"));
}

//===----------------------------------------------------------------------===//
// Matrix expansion and variants.
//===----------------------------------------------------------------------===//

TEST(CampaignTest, MatrixOrderIsCratesThenSeedsThenVariants) {
  CampaignSpec Spec;
  Spec.Crates = {"slab", "bytes"};
  Spec.SeedBegin = 1;
  Spec.SeedEnd = 2;
  Spec.Variants = {"base", "no-semantic"};
  std::vector<CampaignJob> Jobs = expandMatrix(Spec);
  ASSERT_EQ(Jobs.size(), 8u);
  EXPECT_EQ(Jobs[0].Crate, "slab");
  EXPECT_EQ(Jobs[0].Seed, 1u);
  EXPECT_EQ(Jobs[0].Variant, "base");
  EXPECT_EQ(Jobs[1].Variant, "no-semantic");
  EXPECT_EQ(Jobs[2].Seed, 2u);
  EXPECT_EQ(Jobs[4].Crate, "bytes");
  for (size_t I = 0; I < Jobs.size(); ++I) {
    EXPECT_EQ(Jobs[I].Index, I);
    EXPECT_EQ(Jobs[I].Config.Seed, Jobs[I].Seed);
  }
  EXPECT_FALSE(Jobs[1].Config.SemanticAware);
  EXPECT_TRUE(Jobs[0].Config.SemanticAware);
}

TEST(CampaignTest, ApplyVariantCoversTheVocabulary) {
  RunConfig C;
  EXPECT_TRUE(applyVariant("base", C));
  EXPECT_TRUE(applyVariant("eager", C));
  EXPECT_EQ(C.Mode, refine::RefinementMode::PurelyEager);
  EXPECT_TRUE(applyVariant("lazy", C));
  EXPECT_EQ(C.Mode, refine::RefinementMode::PurelyLazy);
  EXPECT_TRUE(applyVariant("interleave", C));
  EXPECT_TRUE(C.InterleaveLengths);
  EXPECT_TRUE(applyVariant("mutate-inputs", C));
  EXPECT_TRUE(C.MutateInputs);
  EXPECT_TRUE(applyVariant("no-incremental", C));
  EXPECT_FALSE(C.IncrementalRefinement);
  RunConfig Bias;
  EXPECT_TRUE(applyVariant("coverage-bias", Bias));
  EXPECT_TRUE(Bias.BiasCoverage);
  EXPECT_TRUE(Bias.InterleaveLengths); // The biased leg is interleaved.
  EXPECT_TRUE(Bias.validate().empty());
  EXPECT_FALSE(applyVariant("turbo", C));
}

//===----------------------------------------------------------------------===//
// The determinism contract (satellite: pool-width independence).
//===----------------------------------------------------------------------===//

TEST(CampaignTest, AggregateIsByteIdenticalForAnyPoolWidth) {
  Session S;
  CampaignSpec One = quadSpec();
  One.Jobs = 1;
  CampaignSpec Four = quadSpec();
  Four.Jobs = 4;
  CampaignResult A = CampaignRunner(S, One).run();
  CampaignResult B = CampaignRunner(S, Four).run();
  ASSERT_EQ(A.Jobs.size(), 8u);
  ASSERT_EQ(B.Jobs.size(), 8u);
  // The aggregate document: byte-identical, scheduling scrubbed.
  EXPECT_EQ(campaignToJson(One, A).dump(), campaignToJson(Four, B).dump());
  // The merged per-stage metric totals: identical map, key for key.
  EXPECT_FALSE(A.MergedCounters.empty());
  EXPECT_EQ(A.MergedCounters, B.MergedCounters);
  // And the totals themselves.
  EXPECT_EQ(A.Totals.Synthesized, B.Totals.Synthesized);
  EXPECT_EQ(A.Totals.Rejected, B.Totals.Rejected);
  EXPECT_EQ(A.Totals.Executed, B.Totals.Executed);
  EXPECT_EQ(A.Totals.ByCategory, B.Totals.ByCategory);
  EXPECT_EQ(A.Workers, 1);
  EXPECT_EQ(B.Workers, 4);
}

TEST(CampaignTest, ResultsLandInMatrixOrderOnEveryWorker) {
  Session S;
  CampaignSpec Spec = quadSpec();
  Spec.Jobs = 3; // Deliberately not a divisor of the 8-job matrix.
  CampaignResult R = CampaignRunner(S, Spec).run();
  std::vector<CampaignJob> Expected = expandMatrix(Spec);
  ASSERT_EQ(R.Jobs.size(), Expected.size());
  for (size_t I = 0; I < R.Jobs.size(); ++I) {
    EXPECT_EQ(R.Jobs[I].Job.Index, I);
    EXPECT_EQ(R.Jobs[I].Job.Crate, Expected[I].Crate);
    EXPECT_EQ(R.Jobs[I].Job.Seed, Expected[I].Seed);
    EXPECT_GE(R.Jobs[I].Worker, 0);
    EXPECT_LT(R.Jobs[I].Worker, 3);
    EXPECT_TRUE(R.Jobs[I].Result.Supported);
  }
}

TEST(CampaignTest, PoolClampsToMatrixSize) {
  Session S;
  CampaignSpec Spec;
  Spec.Crates = {"slab"};
  Spec.Base = quickBase();
  Spec.Jobs = 16; // One job: fifteen workers would have nothing to do.
  CampaignResult R = CampaignRunner(S, Spec).run();
  ASSERT_EQ(R.Jobs.size(), 1u);
  EXPECT_EQ(R.Workers, 1);
}

TEST(CampaignTest, ProgressCallbackFiresOncePerJob) {
  Session S;
  CampaignSpec Spec = quadSpec();
  Spec.Jobs = 4;
  CampaignRunner Runner(S, Spec);
  std::atomic<int> Fired{0};
  Runner.onJobDone([&](const CampaignJobResult &JR) {
    EXPECT_FALSE(JR.Job.Crate.empty());
    ++Fired;
  });
  CampaignResult R = Runner.run();
  EXPECT_EQ(Fired.load(), static_cast<int>(R.Jobs.size()));
}

//===----------------------------------------------------------------------===//
// The aggregate document (schema_version 5).
//===----------------------------------------------------------------------===//

TEST(CampaignTest, AggregateDocumentShape) {
  Session S;
  CampaignSpec Spec = quadSpec();
  Spec.Jobs = 2;
  CampaignResult R = CampaignRunner(S, Spec).run();
  json::ParseResult P = json::parse(campaignToJson(Spec, R).dump());
  ASSERT_TRUE(P.Ok) << P.Error;
  EXPECT_EQ(P.Val.get("schema_version").asInt(), 5);
  EXPECT_EQ(P.Val.get("kind").asString(), "campaign");
  EXPECT_EQ(P.Val.get("matrix").get("jobs_total").asInt(), 8);
  const json::Value &Jobs = P.Val.get("jobs");
  ASSERT_EQ(Jobs.kind(), json::Value::Kind::Array);
  ASSERT_EQ(Jobs.size(), 8u);
  // Per-job entries carry the matrix cell and the embedded result, but
  // nothing scheduling-dependent: no worker ids, no host wall time.
  const json::Value &First = Jobs.at(0);
  EXPECT_EQ(First.get("crate").asString(), "slab");
  EXPECT_FALSE(First.has("worker"));
  const json::Value &Synth = First.get("result").get("synthesis");
  EXPECT_TRUE(Synth.has("solve_calls"));
  EXPECT_FALSE(Synth.has("solve_wall_seconds"));
  EXPECT_FALSE(Synth.has("build_wall_seconds"));
  EXPECT_GT(P.Val.get("totals").get("synthesized").asInt(), 0);
  EXPECT_TRUE(P.Val.has("metrics"));
  // Version 5: the campaign aggregate carries per-crate api_coverage.
  const json::Value &Cov = P.Val.get("api_coverage");
  ASSERT_EQ(Cov.kind(), json::Value::Kind::Array);
  ASSERT_EQ(Cov.size(), Spec.Crates.size());
  EXPECT_EQ(Cov.at(0).get("crate").asString(), "slab");
  EXPECT_GT(
      Cov.at(0).get("api_coverage").get("edges_covered").asInt(), 0);
}

TEST(CampaignTest, SaturationSentinelSurvivesRunDocumentRoundTrip) {
  // A run that tracked coverage but never covered an edge carries the
  // -1 "never saturated" sentinel. The full run-document round trip
  // (serialize -> dump -> parse -> resultFromJson) must preserve it -
  // no path may revive it as a real timestamp.
  RunResult R;
  R.Crate = "slab";
  R.ApiCoverage.NodesTotal = 5;
  R.ApiCoverage.EdgesTotal = 9;
  R.ApiCoverage.NodeBits.assign(1, 0);
  R.ApiCoverage.EdgeBits.assign(2, 0);
  R.ApiCoverage.Snaps.push_back({10.0, 0, 0});
  R.ApiCoverage.SaturationSeconds = -1;
  json::ParseResult P = json::parse(resultToJson(R, {false}).dump());
  ASSERT_TRUE(P.Ok) << P.Error;
  RunResult Back;
  std::string Err;
  ASSERT_TRUE(resultFromJson(P.Val, Back, Err)) << Err;
  EXPECT_DOUBLE_EQ(Back.ApiCoverage.SaturationSeconds, -1);
  ASSERT_EQ(Back.ApiCoverage.Snaps.size(), 1u);
  // And re-serializing reproduces the document byte for byte, sentinel
  // included (the checkpoint-resume identity depends on this).
  EXPECT_EQ(resultToJson(Back, {false}).dump(),
            resultToJson(R, {false}).dump());
}

TEST(CampaignTest, SaturationSentinelSurvivesCampaignAggregate) {
  // Campaign aggregates merge per-run coverage; merges drop all per-run
  // timing, so the aggregate's api_coverage entries must carry the -1
  // sentinel through serialize -> parse, never a revived timestamp.
  Session S;
  CampaignSpec Spec;
  Spec.Crates = {"slab"};
  Spec.Base = quickBase();
  CampaignResult R = CampaignRunner(S, Spec).run();
  json::ParseResult P = json::parse(campaignToJson(Spec, R).dump());
  ASSERT_TRUE(P.Ok) << P.Error;
  const json::Value &Cov = P.Val.get("api_coverage");
  ASSERT_EQ(Cov.size(), 1u);
  coverage::ApiCoverageData Back;
  std::string Err;
  ASSERT_TRUE(coverage::apiCoverageFromJson(
      Cov.at(0).get("api_coverage"), Back, Err))
      << Err;
  EXPECT_DOUBLE_EQ(Back.SaturationSeconds, -1);
  EXPECT_TRUE(Back.Snaps.empty());
}

TEST(CampaignTest, SingleRunDocumentKeepsWallTimeByDefault) {
  Session S;
  RunResult R = S.runOne("slab", quickBase());
  json::Value Doc = resultToJson(R);
  EXPECT_EQ(Doc.get("schema_version").asInt(), 5);
  EXPECT_TRUE(Doc.get("synthesis").has("solve_wall_seconds"));
  ResultJsonOptions NoWall;
  NoWall.HostWallTime = false;
  EXPECT_FALSE(
      resultToJson(R, NoWall).get("synthesis").has("solve_wall_seconds"));
}

//===----------------------------------------------------------------------===//
// Session facade.
//===----------------------------------------------------------------------===//

TEST(SessionTest, RunOneMatchesDirectDriver) {
  Session S;
  RunConfig C = quickBase();
  RunResult A = S.runOne("slab", C);
  const crates::CrateSpec &Spec = *S.find("slab");
  // Same shared analysis as the Session route, so even the compat cache
  // hit/miss split matches byte for byte.
  RunResult B = SyRustDriver(Spec, C, nullptr, S.analysisFor(Spec)).run();
  EXPECT_EQ(A.Synthesized, B.Synthesized);
  EXPECT_EQ(A.Rejected, B.Rejected);
  EXPECT_EQ(A.Executed, B.Executed);
  EXPECT_EQ(resultToJson(A, {false}).dump(), resultToJson(B, {false}).dump());

  // A bare driver (no shared analysis) computes every probe locally:
  // identical programs and results, only the counter split moves from
  // base_hits to local hits/misses.
  RunResult D = SyRustDriver(Spec, C).run();
  EXPECT_EQ(A.Synthesized, D.Synthesized);
  EXPECT_EQ(A.Rejected, D.Rejected);
  EXPECT_EQ(A.Executed, D.Executed);
  EXPECT_EQ(A.Synth.CompatHits + A.Synth.CompatBaseHits +
                A.Synth.CompatMisses,
            D.Synth.CompatHits + D.Synth.CompatMisses);
  EXPECT_EQ(D.Synth.CompatBaseHits, 0u);
}

TEST(SessionTest, RunOneRejectsInvalidConfigAndUnknownCrate) {
  Session S;
  RunConfig Bad = quickBase();
  Bad.CurveSamples = 0;
  EXPECT_FALSE(S.runOne("slab", Bad).Supported);
  EXPECT_FALSE(S.runOne("no-such-crate", quickBase()).Supported);
  EXPECT_EQ(S.find("no-such-crate"), nullptr);
}

TEST(SessionTest, SupportedCratesMatchRegistry) {
  Session S;
  std::vector<std::string> Names = S.supportedCrates();
  EXPECT_FALSE(Names.empty());
  std::set<std::string> Unique(Names.begin(), Names.end());
  EXPECT_EQ(Unique.size(), Names.size());
  for (const std::string &Name : Names) {
    const crates::CrateSpec *Spec = S.find(Name);
    ASSERT_NE(Spec, nullptr) << Name;
    EXPECT_TRUE(Spec->Info.SupportsSynthesis) << Name;
  }
}

//===----------------------------------------------------------------------===//
// Merged multi-lane traces.
//===----------------------------------------------------------------------===//

TEST(CampaignTest, MergedTraceHasOneNamedLanePerWorker) {
  Session S;
  CampaignSpec Spec;
  Spec.Crates = {"slab", "base16"};
  Spec.SeedBegin = 2021;
  Spec.SeedEnd = 2022;
  Spec.Base = quickBase();
  Spec.Jobs = 2;
  Spec.Trace = true;
  CampaignResult R = CampaignRunner(S, Spec).run();
  ASSERT_FALSE(R.MergedTraceJson.empty());
  json::ParseResult P = json::parse(R.MergedTraceJson);
  ASSERT_TRUE(P.Ok) << P.Error;
  const json::Value &Events = P.Val.get("traceEvents");
  ASSERT_EQ(Events.kind(), json::Value::Kind::Array);
  std::set<int64_t> Lanes;
  std::set<std::string> LaneNames;
  for (size_t I = 0; I < Events.size(); ++I) {
    const json::Value &E = Events.at(I);
    Lanes.insert(E.get("tid").asInt());
    if (E.get("ph").asString() == "M" &&
        E.get("name").asString() == "thread_name")
      LaneNames.insert(E.get("args").get("name").asString());
  }
  EXPECT_EQ(Lanes, (std::set<int64_t>{0, 1}));
  EXPECT_EQ(LaneNames,
            (std::set<std::string>{"worker-0", "worker-1"}));
}

TEST(CampaignTest, TraceOffLeavesMergedTraceEmpty) {
  Session S;
  CampaignSpec Spec;
  Spec.Crates = {"slab"};
  Spec.Base = quickBase();
  CampaignResult R = CampaignRunner(S, Spec).run();
  EXPECT_TRUE(R.MergedTraceJson.empty());
}

} // namespace
