//===--- ProgramParserTest.cpp - Tests for textual test-case parsing ------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "program/ProgramParser.h"
#include "rustsim/Checker.h"
#include "synth/Synthesizer.h"
#include "types/TypeParser.h"

#include <gtest/gtest.h>

using namespace syrust;
using namespace syrust::api;
using namespace syrust::program;
using namespace syrust::types;

namespace {

class ProgramParserFixture : public ::testing::Test {
protected:
  TypeArena Arena;
  TypeParser Parser{Arena, {"T"}};
  ApiDatabase Db;
  std::vector<ApiId> Builtins;

  const Type *ty(const std::string &S) {
    const Type *T = Parser.parse(S);
    EXPECT_NE(T, nullptr) << Parser.error();
    return T;
  }

  void SetUp() override {
    Builtins = addBuiltinApis(Db, Arena);
    ApiSig Push;
    Push.Name = "Vec::push";
    Push.Inputs = {ty("&mut Vec<T>"), ty("T")};
    Push.Output = ty("()");
    Db.add(std::move(Push));
    ApiSig Pop;
    Pop.Name = "Vec::pop";
    Pop.Inputs = {ty("&mut Vec<T>")};
    Pop.Output = ty("Option<T>");
    Db.add(std::move(Pop));
    ApiSig Parts;
    Parts.Name = "Vec::into_raw_parts";
    Parts.Inputs = {ty("Vec<T>")};
    Parts.Output = ty("(usize, usize, usize)");
    Db.add(std::move(Parts));
  }

  std::vector<TemplateInput> vecTemplate() {
    return {{"s", ty("String")}, {"v", ty("Vec<String>")}};
  }
};

TEST_F(ProgramParserFixture, ParsesTheFigure1Program) {
  const char *Source = "let mut v1 = v;\n"
                       "let v2 = &mut v1;\n"
                       "Vec::push(v2, s);\n"
                       "let v4 : (usize, usize, usize) = "
                       "Vec::into_raw_parts(v1);\n";
  auto R = parseProgram(Db, Arena, vecTemplate(), Source, {"T"});
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_EQ(R.Prog.Stmts.size(), 4u);
  EXPECT_EQ(Db.get(R.Prog.Stmts[0].Api).Builtin, BuiltinKind::LetMut);
  EXPECT_EQ(Db.get(R.Prog.Stmts[1].Api).Builtin, BuiltinKind::BorrowMut);
  EXPECT_EQ(Db.get(R.Prog.Stmts[2].Api).Name, "Vec::push");
  EXPECT_EQ(R.Prog.Stmts[2].Args, (std::vector<VarId>{3, 0}));
  EXPECT_EQ(R.Prog.Stmts[3].DeclType, ty("(usize, usize, usize)"));
  // The parsed Figure 1 program typechecks.
  TraitEnv Traits(Arena);
  Traits.addDefaultPrimImpls();
  rustsim::Checker Check(Arena, Traits);
  EXPECT_TRUE(Check.check(R.Prog, Db).Success);
}

TEST_F(ProgramParserFixture, RenderParseRoundTrip) {
  const char *Source = "let mut v1 = v;\n"
                       "let v2 = &mut v1;\n"
                       "let v3 : Option<String> = Vec::pop(v2);\n";
  auto R = parseProgram(Db, Arena, vecTemplate(), Source, {"T"});
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Prog.render(Db), Source);
}

TEST_F(ProgramParserFixture, CommentsAndBlankLinesIgnored) {
  const char *Source = "// the paper's figure 1\n"
                       "\n"
                       "let mut v1 = v;\n";
  auto R = parseProgram(Db, Arena, vecTemplate(), Source, {"T"});
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Prog.Stmts.size(), 1u);
}

TEST_F(ProgramParserFixture, ErrorsCarryLineNumbers) {
  auto Missing = parseProgram(Db, Arena, vecTemplate(),
                              "let mut v1 = nosuch;\n", {"T"});
  EXPECT_FALSE(Missing.Ok);
  EXPECT_NE(Missing.Error.find("line 1"), std::string::npos);

  auto BadApi = parseProgram(Db, Arena, vecTemplate(),
                             "let mut v1 = v;\nGhost::call(v1);\n", {"T"});
  EXPECT_FALSE(BadApi.Ok);
  EXPECT_NE(BadApi.Error.find("line 2"), std::string::npos);

  auto NoSemi =
      parseProgram(Db, Arena, vecTemplate(), "let mut v1 = v\n", {"T"});
  EXPECT_FALSE(NoSemi.Ok);

  auto WrongArity = parseProgram(Db, Arena, vecTemplate(),
                                 "Vec::push(v);\n", {"T"});
  EXPECT_FALSE(WrongArity.Ok);
  EXPECT_NE(WrongArity.Error.find("1 inputs"), std::string::npos);
}

TEST_F(ProgramParserFixture, BorrowAscriptionMustMatch) {
  auto Bad = parseProgram(Db, Arena, vecTemplate(),
                          "let v1 : &String = &v;\n", {"T"});
  EXPECT_FALSE(Bad.Ok);
  auto Good = parseProgram(Db, Arena, vecTemplate(),
                           "let v1 : &Vec<String> = &v;\n", {"T"});
  EXPECT_TRUE(Good.Ok) << Good.Error;
}

/// Property: every synthesized program round-trips through render+parse
/// to an identical program (same APIs, wiring, declared types).
TEST_F(ProgramParserFixture, SynthesizedProgramsRoundTrip) {
  TraitEnv Traits(Arena);
  Traits.addDefaultPrimImpls();
  synth::Synthesizer Synth(Arena, Traits, Db, vecTemplate(), 4);
  int Total = 0;
  while (auto P = Synth.next()) {
    ++Total;
    std::string Source = P->render(Db);
    auto R = parseProgram(Db, Arena, vecTemplate(), Source, {"T"});
    ASSERT_TRUE(R.Ok) << R.Error << "\nsource:\n" << Source;
    EXPECT_EQ(R.Prog.hash(), P->hash()) << Source;
    EXPECT_EQ(R.Prog.render(Db), Source);
    if (Total > 500)
      break;
  }
  EXPECT_GT(Total, 10);
}

} // namespace
