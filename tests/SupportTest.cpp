//===--- SupportTest.cpp - Tests for support utilities --------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Rng.h"
#include "support/SimClock.h"
#include "support/StringUtils.h"

#include <gtest/gtest.h>

#include <map>

using namespace syrust;

namespace {

TEST(RngTest, DeterministicAcrossInstances) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 64; ++I)
    Same += A.next() == B.next() ? 1 : 0;
  EXPECT_LT(Same, 4);
}

TEST(RngTest, BelowStaysInRange) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.below(13), 13u);
}

TEST(RngTest, UnitStaysInHalfOpenInterval) {
  Rng R(9);
  for (int I = 0; I < 1000; ++I) {
    double U = R.unit();
    EXPECT_GE(U, 0.0);
    EXPECT_LT(U, 1.0);
  }
}

TEST(RngTest, PickWeightedRespectsZeroWeights) {
  Rng R(11);
  std::vector<double> Weights{0.0, 1.0, 0.0};
  for (int I = 0; I < 200; ++I)
    EXPECT_EQ(R.pickWeighted(Weights), 1u);
}

TEST(RngTest, PickWeightedRoughProportions) {
  Rng R(13);
  std::vector<double> Weights{1.0, 3.0};
  int Counts[2] = {0, 0};
  for (int I = 0; I < 8000; ++I)
    ++Counts[R.pickWeighted(Weights)];
  double Ratio = static_cast<double>(Counts[1]) / Counts[0];
  EXPECT_GT(Ratio, 2.5);
  EXPECT_LT(Ratio, 3.6);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng R(17);
  std::vector<int> Items{1, 2, 3, 4, 5, 6, 7};
  auto Sorted = Items;
  R.shuffle(Items);
  std::sort(Items.begin(), Items.end());
  EXPECT_EQ(Items, Sorted);
}

TEST(SimClockTest, ChargeAccumulates) {
  SimClock C;
  EXPECT_DOUBLE_EQ(C.now(), 0.0);
  C.charge(1.5);
  C.charge(2.5);
  EXPECT_DOUBLE_EQ(C.now(), 4.0);
  EXPECT_FALSE(C.exhausted(5.0));
  EXPECT_TRUE(C.exhausted(4.0));
  C.reset();
  EXPECT_DOUBLE_EQ(C.now(), 0.0);
}

TEST(StringUtilsTest, FormatBasic) {
  EXPECT_EQ(format("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(format("%.2f %%", 3.14159), "3.14 %");
  EXPECT_EQ(format("empty"), "empty");
}

TEST(StringUtilsTest, FormatLongString) {
  std::string Long(5000, 'a');
  EXPECT_EQ(format("%s!", Long.c_str()).size(), 5001u);
}

TEST(StringUtilsTest, JoinAndSplitRoundTrip) {
  std::vector<std::string> Parts{"a", "bb", "", "ccc"};
  std::string Joined = join(Parts, ",");
  EXPECT_EQ(Joined, "a,bb,,ccc");
  EXPECT_EQ(split(Joined, ','), Parts);
}

TEST(StringUtilsTest, SplitSingleField) {
  EXPECT_EQ(split("abc", ','), std::vector<std::string>{"abc"});
  EXPECT_EQ(split("", ','), std::vector<std::string>{""});
}

TEST(StringUtilsTest, TrimEdges) {
  EXPECT_EQ(trim("  x y \t\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
  EXPECT_EQ(trim("z"), "z");
}

TEST(StringUtilsTest, StartsWith) {
  EXPECT_TRUE(startsWith("Vec<T>", "Vec"));
  EXPECT_FALSE(startsWith("Vec", "Vec<T>"));
  EXPECT_TRUE(startsWith("anything", ""));
}

} // namespace
