//===--- CliRequestTest.cpp - Unified request API tests -------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
//
// The cli library is the single construction path for every request the
// framework executes — `syrust` argv and the serve protocol both go
// through its option table. These tests pin the properties that make
// that worth having: one specific message per bad field, and argv/JSON
// agreement by construction (argvToRequestJson output decodes to the
// same spec parseArgv produced).
//
//===----------------------------------------------------------------------===//

#include "cli/RequestSpec.h"

#include "core/Session.h"

#include <gtest/gtest.h>

using namespace syrust;
using namespace syrust::cli;

namespace {

RequestSpec parseOk(Verb V, std::vector<const char *> Argv) {
  RequestSpec Spec;
  std::vector<std::string> Errors;
  bool Ok = parseArgv(V, static_cast<int>(Argv.size()), Argv.data(), Spec,
                      Errors);
  EXPECT_TRUE(Ok) << (Errors.empty() ? "" : Errors.front());
  return Spec;
}

std::vector<std::string> parseErrors(Verb V,
                                     std::vector<const char *> Argv) {
  RequestSpec Spec;
  std::vector<std::string> Errors;
  EXPECT_FALSE(parseArgv(V, static_cast<int>(Argv.size()), Argv.data(),
                         Spec, Errors));
  return Errors;
}

bool mentions(const std::vector<std::string> &Errors,
              const std::string &Needle) {
  for (const std::string &E : Errors)
    if (E.find(Needle) != std::string::npos)
      return true;
  return false;
}

TEST(CliRequestTest, ExitCodesAreTheDocumentedContract) {
  // docs/SERVE.md and the usage text promise these numbers; scripts
  // depend on them.
  EXPECT_EQ(0, ExitOk);
  EXPECT_EQ(1, ExitFinding);
  EXPECT_EQ(2, ExitUsage);
  EXPECT_EQ(3, ExitRuntime);
}

TEST(CliRequestTest, VerbNamesRoundTrip) {
  for (Verb V : {Verb::List, Verb::Run, Verb::Campaign, Verb::Audit,
                 Verb::Coverage, Verb::Report, Verb::Serve}) {
    Verb Back;
    ASSERT_TRUE(verbFromName(verbName(V), Back)) << verbName(V);
    EXPECT_EQ(static_cast<int>(V), static_cast<int>(Back));
  }
  Verb V;
  EXPECT_FALSE(verbFromName("bogus", V));
  EXPECT_FALSE(verbFromName("", V));
}

TEST(CliRequestTest, RunArgvParses) {
  RequestSpec Spec = parseOk(
      Verb::Run, {"slab", "--budget", "25", "--seed", "7", "--portfolio",
                  "--trace-out", "t.json", "--json"});
  EXPECT_EQ(Verb::Run, Spec.V);
  EXPECT_EQ("slab", Spec.Run.Crate);
  EXPECT_EQ(25.0, Spec.Run.Config.BudgetSeconds);
  EXPECT_EQ(7u, Spec.Run.Config.Seed);
  EXPECT_TRUE(Spec.Run.Config.Portfolio);
  EXPECT_EQ("t.json", Spec.Out.TraceOut);
  EXPECT_TRUE(Spec.Out.Json);
}

TEST(CliRequestTest, CampaignArgvParses) {
  RequestSpec Spec = parseOk(
      Verb::Campaign,
      {"--crates", "slab,bytes", "--seeds", "3..5", "--variants",
       "base,portfolio", "--jobs", "4", "--budget", "9", "--out", "d",
       "--checkpoint", "ck.jsonl"});
  EXPECT_EQ(Verb::Campaign, Spec.V);
  ASSERT_EQ(2u, Spec.Campaign.Spec.Crates.size());
  EXPECT_EQ("slab", Spec.Campaign.Spec.Crates[0]);
  EXPECT_EQ(3u, Spec.Campaign.Spec.SeedBegin);
  EXPECT_EQ(5u, Spec.Campaign.Spec.SeedEnd);
  ASSERT_EQ(2u, Spec.Campaign.Spec.Variants.size());
  EXPECT_EQ(4, Spec.Campaign.Spec.Jobs);
  EXPECT_EQ(9.0, Spec.Campaign.Spec.Base.BudgetSeconds);
  EXPECT_EQ("d", Spec.Out.OutDir);
  EXPECT_EQ("ck.jsonl", Spec.Campaign.CheckpointPath);
}

TEST(CliRequestTest, OneSpecificMessagePerBadField) {
  // Three independent mistakes → three messages, each naming its field.
  std::vector<std::string> Errors = parseErrors(
      Verb::Campaign,
      {"--budget", "nope", "--seeds", "9..3", "--bogus-flag"});
  EXPECT_EQ(3u, Errors.size());
  EXPECT_TRUE(mentions(Errors, "--budget")) << Errors.front();
  EXPECT_TRUE(mentions(Errors, "--seeds"));
  EXPECT_TRUE(mentions(Errors, "--bogus-flag"));
}

TEST(CliRequestTest, FlagsAreScopedToTheirVerbs) {
  // --checkpoint belongs to campaign alone; run must name the rejected
  // flag, not silently eat it.
  EXPECT_TRUE(mentions(
      parseErrors(Verb::Run, {"slab", "--checkpoint", "x.jsonl"}),
      "--checkpoint"));
  EXPECT_TRUE(
      mentions(parseErrors(Verb::Coverage, {"f.json", "--budget", "3"}),
               "--budget"));
  // --top belongs to coverage alone.
  EXPECT_TRUE(mentions(parseErrors(Verb::Run, {"slab", "--top", "3"}),
                       "--top"));
}

TEST(CliRequestTest, MissingValuesAndPositionals) {
  EXPECT_TRUE(
      mentions(parseErrors(Verb::Run, {"slab", "--budget"}), "--budget"));
  EXPECT_TRUE(mentions(parseErrors(Verb::Run, {}), "crate"));
  EXPECT_TRUE(mentions(parseErrors(Verb::Report, {}), "file"));
  EXPECT_TRUE(
      mentions(parseErrors(Verb::Run, {"slab", "extra"}), "extra"));
}

TEST(CliRequestTest, JsonRequestDecodes) {
  json::ParseResult P = json::parse(
      "{\"verb\":\"campaign\",\"crates\":\"slab,bytes\","
      "\"seeds\":\"3..5\",\"jobs\":4,\"budget\":9,\"out\":\"d\"}");
  ASSERT_TRUE(P.Ok);
  RequestSpec Spec;
  std::vector<std::string> Errors;
  ASSERT_TRUE(fromRequestJson(P.Val, Spec, Errors))
      << (Errors.empty() ? "" : Errors.front());
  EXPECT_EQ(Verb::Campaign, Spec.V);
  ASSERT_EQ(2u, Spec.Campaign.Spec.Crates.size());
  EXPECT_EQ(3u, Spec.Campaign.Spec.SeedBegin);
  EXPECT_EQ(5u, Spec.Campaign.Spec.SeedEnd);
  EXPECT_EQ(4, Spec.Campaign.Spec.Jobs);
  EXPECT_EQ("d", Spec.Out.OutDir);
}

TEST(CliRequestTest, JsonRequestRejectsBadMembers) {
  // Unknown member, wrong type, and wire-invalid verbs each get one
  // specific message.
  auto decodeErrors = [](const std::string &Text) {
    json::ParseResult P = json::parse(Text);
    EXPECT_TRUE(P.Ok);
    RequestSpec Spec;
    std::vector<std::string> Errors;
    EXPECT_FALSE(fromRequestJson(P.Val, Spec, Errors));
    return Errors;
  };
  EXPECT_TRUE(mentions(
      decodeErrors("{\"verb\":\"run\",\"crate\":\"slab\",\"bogus\":1}"),
      "bogus"));
  EXPECT_TRUE(mentions(
      decodeErrors(
          "{\"verb\":\"run\",\"crate\":\"slab\",\"budget\":\"ten\"}"),
      "budget"));
  EXPECT_TRUE(
      mentions(decodeErrors("{\"verb\":\"serve\",\"socket\":\"s\"}"),
               "verb"));
  EXPECT_TRUE(mentions(decodeErrors("{\"crates\":\"slab\"}"), "verb"));
  // --connect is how a request reaches a daemon, not something a daemon
  // forwards to itself.
  EXPECT_TRUE(mentions(
      decodeErrors(
          "{\"verb\":\"run\",\"crate\":\"slab\",\"connect\":\"s\"}"),
      "connect"));
}

TEST(CliRequestTest, ArgvAndJsonSurfacesAgree) {
  // The no-drift property: render argv as a protocol request, decode
  // it, and the spec must match what parseArgv produced directly.
  struct Case {
    Verb V;
    std::vector<const char *> Argv;
  };
  const Case Cases[] = {
      {Verb::Run,
       {"slab", "--budget", "25", "--seed", "7", "--portfolio",
        "--stop-on-bug", "--max-tests", "50", "--json"}},
      {Verb::Campaign,
       {"--crates", "slab,bytes", "--seeds", "3..5", "--variants",
        "base,portfolio", "--jobs", "4", "--budget", "9", "--out", "d",
        "--coverage-out", "c.json"}},
      {Verb::Audit,
       {"--crates", "slab", "--seeds", "2..4", "--max-models", "100",
        "--weaken-kills", "--out", "a"}},
      {Verb::Coverage, {"c.json", "--top", "3"}},
  };
  for (const Case &C : Cases) {
    RequestSpec Direct;
    std::vector<std::string> Errors;
    ASSERT_TRUE(parseArgv(C.V, static_cast<int>(C.Argv.size()),
                          C.Argv.data(), Direct, Errors));

    json::Value Wire;
    ASSERT_TRUE(argvToRequestJson(C.V, static_cast<int>(C.Argv.size()),
                                  C.Argv.data(), Wire, Errors));
    // The wire form must decode cleanly after a JSON round trip, as it
    // would over the socket.
    json::ParseResult P = json::parse(Wire.dump());
    ASSERT_TRUE(P.Ok);
    RequestSpec ViaWire;
    ASSERT_TRUE(fromRequestJson(P.Val, ViaWire, Errors))
        << (Errors.empty() ? "" : Errors.front());

    EXPECT_EQ(static_cast<int>(Direct.V), static_cast<int>(ViaWire.V));
    // Re-render both through the wire encoder? ViaWire came from JSON,
    // not argv — compare the load-bearing fields directly.
    EXPECT_EQ(Direct.Run.Crate, ViaWire.Run.Crate);
    EXPECT_EQ(Direct.Run.Config.BudgetSeconds,
              ViaWire.Run.Config.BudgetSeconds);
    EXPECT_EQ(Direct.Run.Config.Seed, ViaWire.Run.Config.Seed);
    EXPECT_EQ(Direct.Run.Config.Portfolio, ViaWire.Run.Config.Portfolio);
    EXPECT_EQ(Direct.Run.Config.StopOnFirstBug,
              ViaWire.Run.Config.StopOnFirstBug);
    EXPECT_EQ(Direct.Campaign.Spec.Crates, ViaWire.Campaign.Spec.Crates);
    EXPECT_EQ(Direct.Campaign.Spec.SeedBegin,
              ViaWire.Campaign.Spec.SeedBegin);
    EXPECT_EQ(Direct.Campaign.Spec.SeedEnd, ViaWire.Campaign.Spec.SeedEnd);
    EXPECT_EQ(Direct.Campaign.Spec.Variants,
              ViaWire.Campaign.Spec.Variants);
    EXPECT_EQ(Direct.Campaign.Spec.Jobs, ViaWire.Campaign.Spec.Jobs);
    EXPECT_EQ(Direct.Campaign.Spec.Base.BudgetSeconds,
              ViaWire.Campaign.Spec.Base.BudgetSeconds);
    EXPECT_EQ(Direct.Audit.Spec.Crates, ViaWire.Audit.Spec.Crates);
    EXPECT_EQ(Direct.Audit.Spec.Base.MaxModels,
              ViaWire.Audit.Spec.Base.MaxModels);
    EXPECT_EQ(Direct.Audit.Spec.Base.WeakenConsumptionKills,
              ViaWire.Audit.Spec.Base.WeakenConsumptionKills);
    EXPECT_EQ(Direct.Coverage.File, ViaWire.Coverage.File);
    EXPECT_EQ(Direct.Coverage.Top, ViaWire.Coverage.Top);
    EXPECT_EQ(Direct.Out.OutDir, ViaWire.Out.OutDir);
    EXPECT_EQ(Direct.Out.CoverageOut, ViaWire.Out.CoverageOut);
    EXPECT_EQ(Direct.Out.Json, ViaWire.Out.Json);
  }
}

TEST(CliRequestTest, ConnectIsClientSideOnly) {
  // --connect parses (the CLI routes on it) but never reaches the wire
  // form argvToRequestJson produces.
  std::vector<const char *> Argv = {"slab", "--budget", "5", "--connect",
                                    "/tmp/sock"};
  RequestSpec Spec = parseOk(Verb::Run, Argv);
  EXPECT_EQ("/tmp/sock", Spec.Connect);

  json::Value Wire;
  std::vector<std::string> Errors;
  ASSERT_TRUE(argvToRequestJson(Verb::Run,
                                static_cast<int>(Argv.size()),
                                Argv.data(), Wire, Errors));
  EXPECT_FALSE(Wire.has("connect"));
  EXPECT_EQ("run", Wire.get("verb").asString());
}

TEST(CliRequestTest, FinalizeCrossFieldRules) {
  core::Session S;
  {
    // --trace-wall without --trace-out: nothing to stamp.
    RequestSpec Spec =
        parseOk(Verb::Run, {"slab", "--trace-wall"});
    EXPECT_TRUE(mentions(finalize(S, Spec), "--trace-out"));
  }
  {
    // --trace without --out: merged trace has nowhere to go.
    RequestSpec Spec = parseOk(Verb::Campaign, {"--trace"});
    EXPECT_TRUE(mentions(finalize(S, Spec), "--out"));
  }
  {
    // Checkpointed cells carry no trace events, so resume cannot
    // reconstruct a merged trace: refuse the combination.
    RequestSpec Spec = parseOk(
        Verb::Campaign,
        {"--checkpoint", "ck.jsonl", "--trace", "--out", "d"});
    EXPECT_TRUE(mentions(finalize(S, Spec), "--checkpoint"));
  }
  {
    RequestSpec Spec = parseOk(Verb::Serve, {});
    EXPECT_TRUE(mentions(finalize(S, Spec), "--socket"));
  }
  {
    RequestSpec Spec = parseOk(Verb::Run, {"no_such_crate"});
    EXPECT_TRUE(mentions(finalize(S, Spec), "no_such_crate"));
  }
  {
    RequestSpec Spec = parseOk(Verb::Run, {"slab", "--strategy", "nope"});
    EXPECT_TRUE(mentions(finalize(S, Spec), "known:"));
  }
}

TEST(CliRequestTest, FinalizeExpandsAllCrates) {
  core::Session S;
  RequestSpec Spec = parseOk(Verb::Campaign, {"--budget", "3"});
  ASSERT_TRUE(finalize(S, Spec).empty());
  // Empty --crates means every synthesis-supporting crate.
  EXPECT_EQ(S.supportedCrates().size(), Spec.Campaign.Spec.Crates.size());

  RequestSpec Explicit =
      parseOk(Verb::Campaign, {"--crates", "all", "--budget", "3"});
  ASSERT_TRUE(finalize(S, Explicit).empty());
  EXPECT_EQ(Spec.Campaign.Spec.Crates, Explicit.Campaign.Spec.Crates);
}

} // namespace
