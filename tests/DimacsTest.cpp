//===--- DimacsTest.cpp - Tests for DIMACS input/output -------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sat/Dimacs.h"

#include <gtest/gtest.h>

using namespace syrust::sat;

namespace {

TEST(DimacsTest, ParsesSimpleSatInstance) {
  Solver S;
  DimacsResult R = loadDimacs(S, "c a comment\n"
                                 "p cnf 3 2\n"
                                 "1 -2 0\n"
                                 "2 3 0\n");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.NumVars, 3);
  EXPECT_EQ(R.NumClauses, 2);
  EXPECT_TRUE(R.Consistent);
  EXPECT_EQ(S.solve(), SolveResult::Sat);
}

TEST(DimacsTest, ParsesUnsatInstance) {
  Solver S;
  DimacsResult R = loadDimacs(S, "p cnf 1 2\n1 0\n-1 0\n");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_FALSE(R.Consistent);
  EXPECT_EQ(S.solve(), SolveResult::Unsat);
}

TEST(DimacsTest, VariablesCreatedOnDemandBeyondHeader) {
  Solver S;
  DimacsResult R = loadDimacs(S, "p cnf 2 1\n1 2 7 0\n");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.NumVars, 7);
}

TEST(DimacsTest, CardinalityExtension) {
  Solver S;
  DimacsResult R = loadDimacs(S, "p cnf 4 1\n"
                                 "1 2 3 4 0\n"
                                 "c atmost 1 1 2 3 4 0\n"
                                 "c atleast 1 1 2 0\n");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.NumCardinality, 2);
  ASSERT_EQ(S.solve(), SolveResult::Sat);
  int True = 0;
  for (int V = 0; V < 4; ++V)
    True += S.modelValue(V) == Value::True ? 1 : 0;
  EXPECT_EQ(True, 1);
  EXPECT_TRUE(S.modelValue(0) == Value::True ||
              S.modelValue(1) == Value::True);
}

TEST(DimacsTest, RejectsMalformedInput) {
  {
    Solver S;
    DimacsResult R = loadDimacs(S, "p cnf x y\n");
    EXPECT_FALSE(R.Ok);
    EXPECT_FALSE(R.Error.empty());
  }
  {
    Solver S;
    DimacsResult R = loadDimacs(S, "p cnf 2 1\n1 2\n");
    EXPECT_FALSE(R.Ok); // Missing terminating 0.
  }
  {
    Solver S;
    DimacsResult R = loadDimacs(S, "p cnf 1 1\np cnf 1 1\n");
    EXPECT_FALSE(R.Ok); // Duplicate header.
  }
  {
    Solver S;
    DimacsResult R = loadDimacs(S, "c atmost 1 1 2\n");
    EXPECT_FALSE(R.Ok); // Unterminated cardinality line.
  }
}

TEST(DimacsTest, ModelRoundTrip) {
  Solver S;
  ASSERT_TRUE(loadDimacs(S, "p cnf 2 2\n1 0\n-2 0\n").Ok);
  ASSERT_EQ(S.solve(), SolveResult::Sat);
  EXPECT_EQ(modelToDimacs(S), "v 1 -2 0");
}

TEST(DimacsTest, ModelRoundTripWithSparseIds) {
  // A pruned-encoder export mentions only the variables the solver ever
  // assigned; ids 2..4 here are gaps. Reloading the v-line must pin the
  // mentioned variables and leave the gaps free.
  Solver S;
  DimacsResult R = loadDimacs(S, "p cnf 5 0\nv 1 -5 0\n");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.NumModelLits, 2);
  EXPECT_TRUE(R.Consistent);
  ASSERT_EQ(S.solve(), SolveResult::Sat);
  EXPECT_EQ(S.modelValue(0), Value::True);
  EXPECT_EQ(S.modelValue(4), Value::False);
}

TEST(DimacsTest, ModelLineRoundTripsThroughExport) {
  Solver S;
  ASSERT_TRUE(loadDimacs(S, "p cnf 3 3\n1 0\n-2 0\n3 0\n").Ok);
  ASSERT_EQ(S.solve(), SolveResult::Sat);
  std::string Exported = modelToDimacs(S);

  Solver T;
  DimacsResult R = loadDimacs(T, Exported);
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_EQ(T.solve(), SolveResult::Sat);
  for (int V = 0; V < S.numVars(); ++V)
    EXPECT_EQ(T.modelValue(V), S.modelValue(V)) << "var " << V;
}

TEST(DimacsTest, ModelLineCreatesVarsOnDemand) {
  Solver S;
  DimacsResult R = loadDimacs(S, "v -7 0\n");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.NumVars, 7);
  ASSERT_EQ(S.solve(), SolveResult::Sat);
  EXPECT_EQ(S.modelValue(6), Value::False);
}

TEST(DimacsTest, ContradictoryModelLineIsInconsistent) {
  Solver S;
  DimacsResult R = loadDimacs(S, "p cnf 1 1\n1 0\nv -1 0\n");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_FALSE(R.Consistent);
  EXPECT_EQ(S.solve(), SolveResult::Unsat);
}

TEST(DimacsTest, RejectsUnterminatedModelLine) {
  Solver S;
  DimacsResult R = loadDimacs(S, "v 1 -2\n");
  EXPECT_FALSE(R.Ok);
  EXPECT_FALSE(R.Error.empty());
}

TEST(DimacsTest, EmptyInputIsTriviallySat) {
  Solver S;
  DimacsResult R = loadDimacs(S, "");
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(S.solve(), SolveResult::Sat);
}

} // namespace
