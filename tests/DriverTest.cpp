//===--- DriverTest.cpp - End-to-end pipeline tests -----------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/ResultJson.h"
#include "core/SyRustDriver.h"
#include "types/TypeParser.h"

#include <gtest/gtest.h>

#include <set>

using namespace syrust;
using namespace syrust::core;
using namespace syrust::crates;
using namespace syrust::miri;
using namespace syrust::refine;
using namespace syrust::rustsim;

namespace {

RunConfig quickConfig() {
  RunConfig C;
  C.BudgetSeconds = 60;
  C.SnapshotInterval = 10;
  return C;
}

TEST(DriverTest, UnsupportedCratesAreSkipped) {
  SyRustDriver Driver(*findCrate("cookie-factory"), quickConfig());
  RunResult R = Driver.run();
  EXPECT_FALSE(R.Supported);
  EXPECT_EQ(R.Synthesized, 0u);
}

TEST(DriverTest, FindsCrossbeamQueueLeakFast) {
  RunConfig C = quickConfig();
  C.StopOnFirstBug = true;
  SyRustDriver Driver(*findCrate("crossbeam-queue"), C);
  RunResult R = Driver.run();
  ASSERT_TRUE(R.BugFound) << "synthesized " << R.Synthesized;
  EXPECT_EQ(R.FirstBug.Kind, UbKind::MemoryLeak);
  EXPECT_EQ(R.BugLines, 1);
  EXPECT_GT(R.TimeToBug, 0.0);
}

TEST(DriverTest, FindsCrossbeamDanglingPointer) {
  RunConfig C = quickConfig();
  C.BudgetSeconds = 3000;
  C.StopOnFirstBug = true;
  SyRustDriver Driver(*findCrate("crossbeam"), C);
  RunResult R = Driver.run();
  ASSERT_TRUE(R.BugFound) << "synthesized " << R.Synthesized;
  EXPECT_EQ(R.FirstBug.Kind, UbKind::DanglingPointer);
  EXPECT_EQ(R.BugLines, 3);
}

TEST(DriverTest, FindsEncodingRsOobPointer) {
  RunConfig C = quickConfig();
  C.BudgetSeconds = 600;
  C.StopOnFirstBug = true;
  SyRustDriver Driver(*findCrate("encoding_rs"), C);
  RunResult R = Driver.run();
  ASSERT_TRUE(R.BugFound) << "synthesized " << R.Synthesized;
  EXPECT_EQ(R.FirstBug.Kind, UbKind::OutOfBoundsPointer);
  EXPECT_EQ(R.BugLines, 4);
}

TEST(DriverTest, FindsBitvecUseAfterFree) {
  RunConfig C = quickConfig();
  C.BudgetSeconds = 8000; // The deepest bug: a five-call chain.
  C.StopOnFirstBug = true;
  SyRustDriver Driver(*findCrate("bitvec"), C);
  RunResult R = Driver.run();
  ASSERT_TRUE(R.BugFound) << "synthesized " << R.Synthesized;
  EXPECT_EQ(R.FirstBug.Kind, UbKind::UseAfterFree);
  EXPECT_EQ(R.BugLines, 5);
  EXPECT_FALSE(R.BugProgram.empty());
}

TEST(DriverTest, RejectionRateIsLowWithAllFeatures) {
  // The paper's headline: with semantic awareness and hybrid refinement,
  // only a small share of test cases is rejected.
  SyRustDriver Driver(*findCrate("smallvec"), quickConfig());
  RunResult R = Driver.run();
  EXPECT_GT(R.Synthesized, 50u);
  EXPECT_LT(R.rejectedPercent(), 20.0)
      << R.Rejected << "/" << R.Synthesized;
  EXPECT_GT(R.Executed, 0u);
}

TEST(DriverTest, SemanticAblationRaisesLifetimeErrors) {
  RunConfig On = quickConfig();
  RunConfig Off = quickConfig();
  Off.SemanticAware = false;
  RunResult ROn = SyRustDriver(*findCrate("slab"), On).run();
  RunResult ROff = SyRustDriver(*findCrate("slab"), Off).run();
  uint64_t LifetimeOn = ROn.ByCategory[ErrorCategory::LifetimeOwnership];
  uint64_t LifetimeOff =
      ROff.ByCategory[ErrorCategory::LifetimeOwnership];
  EXPECT_GT(LifetimeOff, LifetimeOn * 2)
      << "on=" << LifetimeOn << " off=" << LifetimeOff;
}

TEST(DriverTest, EagerAblationRaisesTypeErrors) {
  RunConfig Hybrid = quickConfig();
  RunConfig Eager = quickConfig();
  Eager.Mode = RefinementMode::PurelyEager;
  Eager.EagerCap = 16;
  RunResult RHybrid = SyRustDriver(*findCrate("im-rc"), Hybrid).run();
  RunResult REager = SyRustDriver(*findCrate("im-rc"), Eager).run();
  EXPECT_GT(REager.rejectedPercent(), RHybrid.rejectedPercent())
      << "hybrid=" << RHybrid.rejectedPercent()
      << " eager=" << REager.rejectedPercent();
}

TEST(DriverTest, CoverageAccumulates) {
  SyRustDriver Driver(*findCrate("bitvec"), quickConfig());
  RunResult R = Driver.run();
  EXPECT_GT(R.Coverage.ComponentLine, 10.0);
  EXPECT_GT(R.Coverage.ComponentBranch, 0.0);
  EXPECT_LE(R.Coverage.LibraryLine, R.Coverage.ComponentLine);
  EXPECT_FALSE(R.CoverageSnaps.empty());
}

TEST(DriverTest, ApiSubsetSelectionClampsAndDedupes) {
  types::TypeArena Arena;
  types::TypeParser Parser{Arena, {}};
  api::ApiDatabase Db;
  std::vector<api::ApiId> Builtins = api::addBuiltinApis(Db, Arena);
  std::vector<api::ApiId> Lib;
  for (int I = 0; I < 6; ++I) {
    api::ApiSig Sig;
    Sig.Name = "api" + std::to_string(I);
    Sig.Inputs.push_back(Parser.parse("String"));
    Sig.Output = Parser.parse("usize");
    Lib.push_back(Db.add(std::move(Sig)));
  }

  // An oversized pinned list with duplicates and a builtin: duplicates
  // collapse, the builtin is skipped, and the result is clamped to the
  // NumApis budget instead of overflowing it.
  Rng R1(7);
  ApiSelectionOptions Opts;
  Opts.Pinned = {Lib[2], Lib[2], Builtins[0], Lib[0], Lib[4], Lib[5]};
  Opts.NumApis = 3;
  std::vector<api::ApiId> Sel = selectApiSubset(Db, Opts, R1);
  ASSERT_EQ(Sel.size(), 3u);
  EXPECT_EQ(Sel[0], Lib[2]);
  EXPECT_EQ(Sel[1], Lib[0]);
  EXPECT_EQ(Sel[2], Lib[4]);
  std::set<api::ApiId> Unique(Sel.begin(), Sel.end());
  EXPECT_EQ(Unique.size(), Sel.size());

  // A budget larger than the library: every API once, still no
  // duplicates and no builtins.
  Rng R2(7);
  Opts.NumApis = 50;
  std::vector<api::ApiId> All = selectApiSubset(Db, Opts, R2);
  EXPECT_EQ(All.size(), Lib.size());
  std::set<api::ApiId> AllUnique(All.begin(), All.end());
  EXPECT_EQ(AllUnique.size(), All.size());
  for (api::ApiId Id : Builtins)
    EXPECT_EQ(AllUnique.count(Id), 0u);
}

TEST(DriverTest, BiasedSelectionWeightsNeverCoveredDegree) {
  // Two-API library: `hub` has the graph's only edge (its String output
  // feeds its own String slot, so its incident degree is 2), `loner`
  // has none. With the graph handed to the selector and no coverage
  // document (everything never-covered), hub's weight is 1+2=3 against
  // loner's 1, so across a fixed seed sweep hub must win strictly more
  // single-slot draws than under the unweighted paper policy - and once
  // every edge is marked covered, the boosts all collapse to 1 and each
  // draw must match the unweighted pick exactly, seed by seed.
  types::TypeArena Arena;
  types::TypeParser Parser{Arena, {}};
  api::ApiDatabase Db;
  api::ApiSig Hub;
  Hub.Name = "hub";
  Hub.Inputs.push_back(Parser.parse("String"));
  Hub.Output = Parser.parse("String");
  api::ApiId HubId = Db.add(std::move(Hub));
  api::ApiSig Loner;
  Loner.Name = "loner";
  Loner.Inputs.push_back(Parser.parse("usize"));
  Loner.Output = Parser.parse("bool");
  Db.add(std::move(Loner));
  types::CompatCache Cache;
  api::DependencyGraph Graph = api::buildDependencyGraph(Db, Arena, Cache);
  ASSERT_EQ(Graph.numEdges(), 1u);

  ApiSelectionOptions Plain;
  Plain.NumApis = 1;
  ApiSelectionOptions Biased = Plain;
  Biased.Graph = &Graph;
  coverage::ApiCoverageData AllCovered;
  AllCovered.NodesTotal = Db.size();
  AllCovered.EdgesTotal = Graph.numEdges();
  AllCovered.NodeBits.assign((Db.size() + 7) / 8, 0xff);
  AllCovered.EdgeBits.assign((Graph.numEdges() + 7) / 8, 0xff);
  ApiSelectionOptions Saturated = Biased;
  Saturated.Coverage = &AllCovered;

  int PlainHub = 0, BiasedHub = 0;
  for (uint64_t Seed = 0; Seed < 200; ++Seed) {
    Rng RPlain(Seed), RBiased(Seed), RSat(Seed);
    std::vector<api::ApiId> P = selectApiSubset(Db, Plain, RPlain);
    std::vector<api::ApiId> B = selectApiSubset(Db, Biased, RBiased);
    std::vector<api::ApiId> S = selectApiSubset(Db, Saturated, RSat);
    ASSERT_EQ(P.size(), 1u);
    PlainHub += P[0] == HubId;
    BiasedHub += B[0] == HubId;
    EXPECT_EQ(S, P); // Fully covered: bias collapses to the paper policy.
  }
  EXPECT_GT(BiasedHub, PlainHub);
}

TEST(DriverTest, BiasCoverageIsDeterministicAndCounted) {
  RunConfig C = quickConfig();
  C.BiasCoverage = true;
  C.InterleaveLengths = true;
  RunResult A = SyRustDriver(*findCrate("slab"), C).run();
  RunResult B = SyRustDriver(*findCrate("slab"), C).run();
  // Biased runs replay byte-identically for a fixed (crate, seed).
  EXPECT_EQ(resultToJson(A, {false}).dump(), resultToJson(B, {false}).dump());
  EXPECT_GT(A.Synth.BiasPicks, 0u);
  // The bias-off pipeline never touches the bias state.
  RunConfig Off = quickConfig();
  Off.InterleaveLengths = true;
  RunResult Plain = SyRustDriver(*findCrate("slab"), Off).run();
  EXPECT_EQ(Plain.Synth.BiasPicks, 0u);
  EXPECT_EQ(Plain.Synth.BiasNewEdges, 0u);
  EXPECT_EQ(Plain.Synth.BiasDecays, 0u);
}

TEST(DriverTest, CurveIsMonotone) {
  SyRustDriver Driver(*findCrate("base16"), quickConfig());
  RunResult R = Driver.run();
  ASSERT_FALSE(R.Curve.empty());
  for (size_t I = 1; I < R.Curve.size(); ++I) {
    EXPECT_GE(R.Curve[I].Synthesized, R.Curve[I - 1].Synthesized);
    EXPECT_GE(R.Curve[I].Rejected, R.Curve[I - 1].Rejected);
  }
  const CurvePoint &Last = R.Curve.back();
  EXPECT_EQ(Last.Rejected,
            Last.TypeErrors + Last.LifetimeErrors + Last.MiscErrors);
}

TEST(DriverTest, DeterministicAcrossRuns) {
  RunConfig C = quickConfig();
  RunResult A = SyRustDriver(*findCrate("slab"), C).run();
  RunResult B = SyRustDriver(*findCrate("slab"), C).run();
  EXPECT_EQ(A.Synthesized, B.Synthesized);
  EXPECT_EQ(A.Rejected, B.Rejected);
  EXPECT_EQ(A.Executed, B.Executed);
}

TEST(DriverTest, ResultDatabaseRecordsEveryVerdict) {
  RunConfig C = quickConfig();
  C.RecordTests = 100000; // Retain everything at this budget.
  RunResult R = SyRustDriver(*findCrate("crossbeam-queue"), C).run();
  EXPECT_EQ(R.Db.total(), R.Synthesized);
  EXPECT_EQ(R.Db.count(TestVerdict::Rejected), R.Rejected);
  EXPECT_EQ(R.Db.count(TestVerdict::Passed) +
                R.Db.count(TestVerdict::Ub),
            R.Executed);
  EXPECT_EQ(R.Db.count(TestVerdict::Ub), R.UbCount);
  // The leak is in the DB with its program and message.
  const TestRecord *Ub = R.Db.firstWith(TestVerdict::Ub);
  ASSERT_NE(Ub, nullptr);
  EXPECT_EQ(Ub->Ub, UbKind::MemoryLeak);
  EXPECT_FALSE(Ub->Source.empty());
  // No program hash repeats: Algorithm 1 blocks every model.
  std::set<uint64_t> Hashes;
  for (const TestRecord &Rec : R.Db.records())
    EXPECT_TRUE(Hashes.insert(Rec.Hash).second);
}

TEST(DriverTest, ResultDatabaseCapAndOffSwitch) {
  RunConfig C = quickConfig();
  C.RecordTests = 5;
  RunResult R = SyRustDriver(*findCrate("base16"), C).run();
  EXPECT_LE(R.Db.records().size(), 5u);
  EXPECT_EQ(R.Db.total(), R.Synthesized); // Counters still full.
  RunConfig Off = quickConfig();
  RunResult R2 = SyRustDriver(*findCrate("base16"), Off).run();
  EXPECT_TRUE(R2.Db.records().empty());
  EXPECT_EQ(R2.Db.total(), R2.Synthesized);
}

TEST(DriverTest, JsonErrorChannelIsLossless) {
  // Routing diagnostics through the cargo-style JSON wire format must not
  // change any outcome: refinement sees byte-equivalent information.
  for (const char *Name : {"bitvec", "im-rc", "slab"}) {
    RunConfig Direct = quickConfig();
    RunConfig Wire = quickConfig();
    Wire.JsonErrorChannel = true;
    RunResult A = SyRustDriver(*findCrate(Name), Direct).run();
    RunResult B = SyRustDriver(*findCrate(Name), Wire).run();
    EXPECT_EQ(A.Synthesized, B.Synthesized) << Name;
    EXPECT_EQ(A.Rejected, B.Rejected) << Name;
    EXPECT_EQ(A.ByDetail, B.ByDetail) << Name;
    EXPECT_EQ(A.Refine.ComboBlocks, B.Refine.ComboBlocks) << Name;
    EXPECT_EQ(A.Refine.TraitRemovals, B.Refine.TraitRemovals) << Name;
  }
}

TEST(DriverTest, MaxTestsCapRespected) {
  RunConfig C = quickConfig();
  C.MaxTests = 25;
  RunResult R = SyRustDriver(*findCrate("bytes"), C).run();
  EXPECT_LE(R.Synthesized, 25u);
}

} // namespace
