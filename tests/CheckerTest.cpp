//===--- CheckerTest.cpp - Tests for the rustsim semantic checker ---------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "rustsim/Checker.h"
#include "types/TypeParser.h"

#include <gtest/gtest.h>

using namespace syrust;
using namespace syrust::api;
using namespace syrust::program;
using namespace syrust::rustsim;
using namespace syrust::types;

namespace {

/// Fixture modeling a small Vec-like library, mirroring Figures 1-2 of the
/// paper.
class CheckerFixture : public ::testing::Test {
protected:
  TypeArena Arena;
  TypeParser Parser{Arena, {"T"}};
  TraitEnv Traits{Arena};
  ApiDatabase Db;
  Checker Check{Arena, Traits};

  ApiId LetMut, Borrow, BorrowMut;
  ApiId Push, Pop, Len, IntoRawParts, CloneVec;

  const Type *parse(const std::string &S) {
    const Type *T = Parser.parse(S);
    EXPECT_NE(T, nullptr) << Parser.error();
    return T;
  }

  ApiId addApi(const std::string &Name, std::vector<std::string> Ins,
               const std::string &Out,
               std::vector<std::pair<std::string, std::string>> Bounds = {},
               ApiQuirks Quirks = {}) {
    ApiSig Sig;
    Sig.Name = Name;
    for (const auto &I : Ins)
      Sig.Inputs.push_back(parse(I));
    Sig.Output = parse(Out);
    Sig.Bounds = std::move(Bounds);
    Sig.Quirks = Quirks;
    return Db.add(std::move(Sig));
  }

  void SetUp() override {
    Traits.addDefaultPrimImpls();
    Traits.addImpl("Clone", Arena.named("String"));
    Traits.addImpl("Clone", parse("Vec<T>"), {{"T", "Clone"}});
    auto B = addBuiltinApis(Db, Arena);
    LetMut = B[0];
    Borrow = B[1];
    BorrowMut = B[2];
    Push = addApi("Vec::push", {"&mut Vec<T>", "T"}, "()");
    Pop = addApi("Vec::pop", {"&mut Vec<T>"}, "Option<T>");
    Len = addApi("Vec::len", {"&Vec<T>"}, "usize");
    IntoRawParts = addApi("Vec::into_raw_parts", {"Vec<T>"},
                          "(usize, usize, usize)");
    CloneVec = addApi("Vec::clone", {"&Vec<T>"}, "Vec<T>",
                      {{"T", "Clone"}});
  }

  /// Template of Figure 2: test(s: String, v: Vec<String>).
  Program makeTemplate() {
    Program P;
    P.Inputs.push_back({"s", parse("String")});
    P.Inputs.push_back({"v", parse("Vec<String>")});
    return P;
  }

  CompileResult check(const Program &P) { return Check.check(P, Db); }
};

//===----------------------------------------------------------------------===//
// The paper's running example (Figure 1)
//===----------------------------------------------------------------------===//

TEST_F(CheckerFixture, Figure1ProgramTypeChecks) {
  Program P = makeTemplate();
  // let mut vm = v;
  P.Stmts.push_back(Stmt{LetMut, {1}, 2, parse("Vec<String>")});
  // let vr = &mut vm;
  P.Stmts.push_back(Stmt{BorrowMut, {2}, 3, parse("&mut Vec<String>")});
  // vr.push(s);
  P.Stmts.push_back(Stmt{Push, {3, 0}, 4, Arena.unit()});
  // let parts = vm.into_raw_parts();
  P.Stmts.push_back(
      Stmt{IntoRawParts, {2}, 5, parse("(usize, usize, usize)")});
  CompileResult R = check(P);
  EXPECT_TRUE(R.Success) << R.Diag.Message;
}

TEST_F(CheckerFixture, SwappedLinesRejected) {
  // Section 2: swapping the last two lines kills vr before its use.
  Program P = makeTemplate();
  P.Stmts.push_back(Stmt{LetMut, {1}, 2, parse("Vec<String>")});
  P.Stmts.push_back(Stmt{BorrowMut, {2}, 3, parse("&mut Vec<String>")});
  P.Stmts.push_back(
      Stmt{IntoRawParts, {2}, 4, parse("(usize, usize, usize)")});
  P.Stmts.push_back(Stmt{Push, {3, 0}, 5, Arena.unit()});
  CompileResult R = check(P);
  ASSERT_FALSE(R.Success);
  EXPECT_EQ(R.Diag.Category, ErrorCategory::LifetimeOwnership);
  EXPECT_EQ(R.Diag.Detail, ErrorDetail::Borrowing);
  EXPECT_EQ(R.Diag.Line, 3);
}

TEST_F(CheckerFixture, DoubleUseOfMovedStringRejected) {
  // Section 2: calling vr.push(s) twice - s moved on first push.
  Program P = makeTemplate();
  P.Stmts.push_back(Stmt{LetMut, {1}, 2, parse("Vec<String>")});
  P.Stmts.push_back(Stmt{BorrowMut, {2}, 3, parse("&mut Vec<String>")});
  P.Stmts.push_back(Stmt{Push, {3, 0}, 4, Arena.unit()});
  P.Stmts.push_back(Stmt{Push, {3, 0}, 5, Arena.unit()});
  CompileResult R = check(P);
  ASSERT_FALSE(R.Success);
  EXPECT_EQ(R.Diag.Detail, ErrorDetail::Ownership);
  EXPECT_NE(R.Diag.Message.find("moved"), std::string::npos);
}

TEST_F(CheckerFixture, SecondMutableBorrowRejected) {
  // Section 2: a second &mut while the first is active.
  Program P = makeTemplate();
  P.Stmts.push_back(Stmt{LetMut, {1}, 2, parse("Vec<String>")});
  P.Stmts.push_back(Stmt{BorrowMut, {2}, 3, parse("&mut Vec<String>")});
  P.Stmts.push_back(Stmt{BorrowMut, {2}, 4, parse("&mut Vec<String>")});
  CompileResult R = check(P);
  ASSERT_FALSE(R.Success);
  EXPECT_EQ(R.Diag.Detail, ErrorDetail::Borrowing);
}

TEST_F(CheckerFixture, SharedAfterMutableBorrowRejected) {
  Program P = makeTemplate();
  P.Stmts.push_back(Stmt{LetMut, {1}, 2, parse("Vec<String>")});
  P.Stmts.push_back(Stmt{BorrowMut, {2}, 3, parse("&mut Vec<String>")});
  P.Stmts.push_back(Stmt{Borrow, {2}, 4, parse("&Vec<String>")});
  CompileResult R = check(P);
  ASSERT_FALSE(R.Success);
  EXPECT_EQ(R.Diag.Detail, ErrorDetail::Borrowing);
}

TEST_F(CheckerFixture, ManySharedBorrowsAllowed) {
  Program P = makeTemplate();
  P.Stmts.push_back(Stmt{Borrow, {1}, 2, parse("&Vec<String>")});
  P.Stmts.push_back(Stmt{Borrow, {1}, 3, parse("&Vec<String>")});
  P.Stmts.push_back(Stmt{Len, {2}, 4, parse("usize")});
  P.Stmts.push_back(Stmt{Len, {3}, 5, parse("usize")});
  EXPECT_TRUE(check(P).Success);
}

TEST_F(CheckerFixture, MutableBorrowAfterSharedRejected) {
  Program P = makeTemplate();
  P.Stmts.push_back(Stmt{LetMut, {1}, 2, parse("Vec<String>")});
  P.Stmts.push_back(Stmt{Borrow, {2}, 3, parse("&Vec<String>")});
  P.Stmts.push_back(Stmt{BorrowMut, {2}, 4, parse("&mut Vec<String>")});
  CompileResult R = check(P);
  ASSERT_FALSE(R.Success);
  EXPECT_EQ(R.Diag.Detail, ErrorDetail::Borrowing);
}

TEST_F(CheckerFixture, MutableBorrowNeedsMutBinding) {
  // `&mut v` where v is an immutable template binding.
  Program P = makeTemplate();
  P.Stmts.push_back(Stmt{BorrowMut, {1}, 2, parse("&mut Vec<String>")});
  CompileResult R = check(P);
  ASSERT_FALSE(R.Success);
  // Binding-mode violations are ownership errors (E0596).
  EXPECT_EQ(R.Diag.Detail, ErrorDetail::Ownership);
  EXPECT_NE(R.Diag.Message.find("not declared as mutable"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Typing
//===----------------------------------------------------------------------===//

TEST_F(CheckerFixture, PolymorphicInstantiationConsistency) {
  // Vec::push(&mut Vec<String>, <something non-String>) must fail.
  Program P = makeTemplate();
  P.Stmts.push_back(Stmt{LetMut, {1}, 2, parse("Vec<String>")});
  P.Stmts.push_back(Stmt{BorrowMut, {2}, 3, parse("&mut Vec<String>")});
  P.Stmts.push_back(Stmt{Len, {3}, 4, parse("usize")}); // usize result
  P.Stmts.push_back(Stmt{Push, {3, 4}, 5, Arena.unit()}); // push usize!
  CompileResult R = check(P);
  ASSERT_FALSE(R.Success);
  EXPECT_EQ(R.Diag.Category, ErrorCategory::Type);
  EXPECT_EQ(R.Diag.Detail, ErrorDetail::Polymorphism);
}

TEST_F(CheckerFixture, MutRefCoercionAccepted) {
  // Vec::len takes &Vec<T>; passing &mut Vec<String> must work.
  Program P = makeTemplate();
  P.Stmts.push_back(Stmt{LetMut, {1}, 2, parse("Vec<String>")});
  P.Stmts.push_back(Stmt{BorrowMut, {2}, 3, parse("&mut Vec<String>")});
  P.Stmts.push_back(Stmt{Len, {3}, 4, parse("usize")});
  EXPECT_TRUE(check(P).Success);
}

TEST_F(CheckerFixture, WrongDeclTypeIsPolymorphismError) {
  // Predicting Option<u8> for pop of a Vec<String> is the Section 5.3
  // "expected X, got Y" case; the checker reports the correct output.
  Program P = makeTemplate();
  P.Stmts.push_back(Stmt{LetMut, {1}, 2, parse("Vec<String>")});
  P.Stmts.push_back(Stmt{BorrowMut, {2}, 3, parse("&mut Vec<String>")});
  P.Stmts.push_back(Stmt{Pop, {3}, 4, parse("Option<u8>")});
  CompileResult R = check(P);
  ASSERT_FALSE(R.Success);
  EXPECT_EQ(R.Diag.Detail, ErrorDetail::Polymorphism);
  EXPECT_EQ(R.Diag.ExpectedOutput, parse("Option<String>"));
  ASSERT_EQ(R.Diag.ActualInputs.size(), 1u);
  EXPECT_EQ(R.Diag.ActualInputs[0], parse("&mut Vec<String>"));
}

TEST_F(CheckerFixture, TraitBoundViolationReported) {
  // Vec<Msb0> is not Clone (Msb0 lacks Clone); Vec::clone must fail with a
  // trait diagnostic carrying the refinement payload.
  Program P;
  P.Inputs.push_back({"v", parse("Vec<Msb0>")});
  P.Stmts.push_back(Stmt{Borrow, {0}, 1, parse("&Vec<Msb0>")});
  P.Stmts.push_back(Stmt{CloneVec, {1}, 2, parse("Vec<Msb0>")});
  CompileResult R = check(P);
  ASSERT_FALSE(R.Success);
  EXPECT_EQ(R.Diag.Detail, ErrorDetail::TraitBound);
  EXPECT_EQ(R.Diag.BadTypeVar, "T");
  EXPECT_EQ(R.Diag.MissingTrait, "Clone");
  EXPECT_EQ(R.Diag.BadBinding, Arena.named("Msb0"));
}

TEST_F(CheckerFixture, TraitBoundSatisfiedPasses) {
  Program P = makeTemplate();
  P.Stmts.push_back(Stmt{Borrow, {1}, 2, parse("&Vec<String>")});
  P.Stmts.push_back(Stmt{CloneVec, {2}, 3, parse("Vec<String>")});
  EXPECT_TRUE(check(P).Success);
}

TEST_F(CheckerFixture, UnresolvedOutputIsPolymorphismError) {
  // An un-concretized constructor: Vec::new() -> Vec<T>.
  ApiId New = addApi("Vec::new", {}, "Vec<T>");
  Program P = makeTemplate();
  P.Stmts.push_back(Stmt{New, {}, 2, parse("Vec<T>")});
  CompileResult R = check(P);
  ASSERT_FALSE(R.Success);
  EXPECT_EQ(R.Diag.Detail, ErrorDetail::Polymorphism);
  EXPECT_NE(R.Diag.Message.find("annotations needed"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Quirks (Misc / residual L&O errors)
//===----------------------------------------------------------------------===//

TEST_F(CheckerFixture, SkewedArityIsMisc) {
  ApiQuirks Q;
  Q.SkewedArity = true;
  ApiId Bad = addApi("Skewed::call", {"usize"}, "usize", {}, Q);
  Program P;
  P.Inputs.push_back({"n", parse("usize")});
  P.Stmts.push_back(Stmt{Bad, {0}, 1, parse("usize")});
  CompileResult R = check(P);
  ASSERT_FALSE(R.Success);
  EXPECT_EQ(R.Diag.Category, ErrorCategory::Misc);
  EXPECT_EQ(R.Diag.Detail, ErrorDetail::Arity);
}

TEST_F(CheckerFixture, MethodNotFoundIsMisc) {
  ApiQuirks Q;
  Q.MethodNotFound = true;
  ApiId Bad = addApi("Ghost::method", {"usize"}, "usize", {}, Q);
  Program P;
  P.Inputs.push_back({"n", parse("usize")});
  P.Stmts.push_back(Stmt{Bad, {0}, 1, parse("usize")});
  CompileResult R = check(P);
  ASSERT_FALSE(R.Success);
  EXPECT_EQ(R.Diag.Detail, ErrorDetail::MethodNotFound);
}

TEST_F(CheckerFixture, DefaultTypeParamQuirkIsTypeError) {
  ApiQuirks Q;
  Q.NeedsDefaultTypeParam = true;
  ApiId Bad = addApi("Graph::with_capacity", {"usize"}, "Graph<i32>", {}, Q);
  Program P;
  P.Inputs.push_back({"n", parse("usize")});
  P.Stmts.push_back(Stmt{Bad, {0}, 1, parse("Graph<i32>")});
  CompileResult R = check(P);
  ASSERT_FALSE(R.Success);
  EXPECT_EQ(R.Diag.Category, ErrorCategory::Type);
  EXPECT_EQ(R.Diag.Detail, ErrorDetail::DefaultTypeParam);
}

TEST_F(CheckerFixture, AnonLifetimeTaintsChainedUse) {
  ApiQuirks Q;
  Q.AnonLifetime = true;
  ApiId Mk = addApi("Reader::header", {"&Vec<String>"}, "&String", {}, Q);
  ApiId UseRef = addApi("String::len_of", {"&String"}, "usize");
  Program P = makeTemplate();
  P.Stmts.push_back(Stmt{Borrow, {1}, 2, parse("&Vec<String>")});
  P.Stmts.push_back(Stmt{Mk, {2}, 3, parse("&String")});
  // Chaining the quirked output into another call is the unsupported
  // lifetime corner case.
  P.Stmts.push_back(Stmt{UseRef, {3}, 4, parse("usize")});
  CompileResult R = check(P);
  ASSERT_FALSE(R.Success);
  EXPECT_EQ(R.Diag.Category, ErrorCategory::LifetimeOwnership);
  EXPECT_EQ(R.Diag.Detail, ErrorDetail::AnonLifetime);

  // Without the chained use the program is fine.
  Program P2 = makeTemplate();
  P2.Stmts.push_back(Stmt{Borrow, {1}, 2, parse("&Vec<String>")});
  P2.Stmts.push_back(Stmt{Mk, {2}, 3, parse("&String")});
  EXPECT_TRUE(check(P2).Success);
}

//===----------------------------------------------------------------------===//
// Paths and propagated lifetimes (Rule 7)
//===----------------------------------------------------------------------===//

TEST_F(CheckerFixture, PropagatedBorrowDiesWithOwner) {
  // first(&Vec<T>) -> &T propagates the borrow; consuming the vector kills
  // the propagated reference.
  ApiSig FirstSig;
  FirstSig.Name = "Vec::first_ref";
  FirstSig.Inputs = {parse("&Vec<T>")};
  FirstSig.Output = parse("&T");
  FirstSig.PropagatesFrom = {0};
  ApiId First = Db.add(std::move(FirstSig));
  ApiId UseRef = addApi("String::len_of", {"&String"}, "usize");

  Program P = makeTemplate();
  P.Stmts.push_back(Stmt{LetMut, {1}, 2, parse("Vec<String>")});
  P.Stmts.push_back(Stmt{Borrow, {2}, 3, parse("&Vec<String>")});
  P.Stmts.push_back(Stmt{First, {3}, 4, parse("&String")});
  P.Stmts.push_back(
      Stmt{IntoRawParts, {2}, 5, parse("(usize, usize, usize)")});
  P.Stmts.push_back(Stmt{UseRef, {4}, 6, parse("usize")});
  CompileResult R = check(P);
  ASSERT_FALSE(R.Success);
  EXPECT_EQ(R.Diag.Detail, ErrorDetail::Borrowing);
  EXPECT_EQ(R.Diag.Line, 4);
}

TEST_F(CheckerFixture, PropagatedBorrowUsableWhileOwnerAlive) {
  ApiSig FirstSig;
  FirstSig.Name = "Vec::first_ref";
  FirstSig.Inputs = {parse("&Vec<T>")};
  FirstSig.Output = parse("&T");
  FirstSig.PropagatesFrom = {0};
  ApiId First = Db.add(std::move(FirstSig));
  ApiId UseRef = addApi("String::len_of", {"&String"}, "usize");

  Program P = makeTemplate();
  P.Stmts.push_back(Stmt{Borrow, {1}, 2, parse("&Vec<String>")});
  P.Stmts.push_back(Stmt{First, {2}, 3, parse("&String")});
  P.Stmts.push_back(Stmt{UseRef, {3}, 4, parse("usize")});
  EXPECT_TRUE(check(P).Success);
}

//===----------------------------------------------------------------------===//
// Rule 4 (aliasing within one line)
//===----------------------------------------------------------------------===//

TEST_F(CheckerFixture, SameOwnedVarTwiceInCallRejected) {
  ApiId Pair = addApi("pair", {"String", "String"}, "()");
  Program P = makeTemplate();
  P.Stmts.push_back(Stmt{Pair, {0, 0}, 2, Arena.unit()});
  CompileResult R = check(P);
  ASSERT_FALSE(R.Success);
  EXPECT_EQ(R.Diag.Detail, ErrorDetail::Ownership);
}

TEST_F(CheckerFixture, SamePrimVarTwiceAllowed) {
  ApiId Add = addApi("add", {"usize", "usize"}, "usize");
  Program P;
  P.Inputs.push_back({"n", parse("usize")});
  P.Stmts.push_back(Stmt{Add, {0, 0}, 1, parse("usize")});
  EXPECT_TRUE(check(P).Success);
}

TEST_F(CheckerFixture, SameSharedRefTwiceAllowed) {
  ApiId Cmp = addApi("cmp", {"&Vec<String>", "&Vec<String>"}, "bool");
  Program P = makeTemplate();
  P.Stmts.push_back(Stmt{Borrow, {1}, 2, parse("&Vec<String>")});
  P.Stmts.push_back(Stmt{Cmp, {2, 2}, 3, parse("bool")});
  EXPECT_TRUE(check(P).Success);
}

//===----------------------------------------------------------------------===//
// Copy semantics
//===----------------------------------------------------------------------===//

TEST_F(CheckerFixture, CopyTypesNotMoved) {
  ApiId Use = addApi("use_usize", {"usize"}, "()");
  Program P;
  P.Inputs.push_back({"n", parse("usize")});
  P.Stmts.push_back(Stmt{Use, {0}, 1, Arena.unit()});
  P.Stmts.push_back(Stmt{Use, {0}, 2, Arena.unit()});
  EXPECT_TRUE(check(P).Success);
}

TEST_F(CheckerFixture, SharedRefsReusableAcrossLines) {
  Program P = makeTemplate();
  P.Stmts.push_back(Stmt{Borrow, {1}, 2, parse("&Vec<String>")});
  P.Stmts.push_back(Stmt{Len, {2}, 3, parse("usize")});
  P.Stmts.push_back(Stmt{Len, {2}, 4, parse("usize")});
  EXPECT_TRUE(check(P).Success);
}

TEST_F(CheckerFixture, MutRefsReusableAcrossLines) {
  // Implicit reborrow: vr usable on multiple lines (Figure 1 narrative).
  Program P = makeTemplate();
  P.Stmts.push_back(Stmt{LetMut, {1}, 2, parse("Vec<String>")});
  P.Stmts.push_back(Stmt{BorrowMut, {2}, 3, parse("&mut Vec<String>")});
  P.Stmts.push_back(Stmt{Pop, {3}, 4, parse("Option<String>")});
  P.Stmts.push_back(Stmt{Pop, {3}, 5, parse("Option<String>")});
  EXPECT_TRUE(check(P).Success);
}

TEST_F(CheckerFixture, MutRefPassedByValueIsMoved) {
  // take(T) binds T := &mut Vec<String>: the parameter pattern is not a
  // reference, so there is no implicit reborrow - the &mut (not Copy) is
  // moved, and using it afterwards is use-of-moved, not a live borrow.
  ApiId Take = addApi("take", {"T"}, "usize");
  Program P = makeTemplate();
  P.Stmts.push_back(Stmt{LetMut, {1}, 2, parse("Vec<String>")});
  P.Stmts.push_back(Stmt{BorrowMut, {2}, 3, parse("&mut Vec<String>")});
  P.Stmts.push_back(Stmt{Take, {3}, 4, parse("usize")});
  P.Stmts.push_back(Stmt{Pop, {3}, 5, parse("Option<String>")});
  CompileResult R = check(P);
  ASSERT_FALSE(R.Success);
  EXPECT_EQ(R.Diag.Detail, ErrorDetail::Ownership);
  EXPECT_EQ(R.Diag.Line, 3);
}

TEST_F(CheckerFixture, SharedRefPassedByValueIsCopied) {
  // &T is Copy: take(T) with T := &Vec<String> copies the reference, so
  // it stays usable afterwards.
  ApiId Take = addApi("take", {"T"}, "usize");
  Program P = makeTemplate();
  P.Stmts.push_back(Stmt{Borrow, {1}, 2, parse("&Vec<String>")});
  P.Stmts.push_back(Stmt{Take, {2}, 3, parse("usize")});
  P.Stmts.push_back(Stmt{Len, {2}, 4, parse("usize")});
  EXPECT_TRUE(check(P).Success) << check(P).Diag.Message;
}

TEST_F(CheckerFixture, ReborrowChainAndDiamondDieWithRoot) {
  // head propagates its argument's borrow; pair merges two chains that
  // share one root (a diamond - the root must be tracked once, and the
  // merged borrow must still die when that root dies).
  ApiSig Head;
  Head.Name = "head";
  Head.Inputs = {parse("&Vec<String>")};
  Head.Output = parse("&Vec<String>");
  Head.PropagatesFrom = {0};
  ApiId HeadId = Db.add(std::move(Head));
  ApiSig Pair;
  Pair.Name = "pair";
  Pair.Inputs = {parse("&Vec<String>"), parse("&Vec<String>")};
  Pair.Output = parse("&Vec<String>");
  Pair.PropagatesFrom = {0, 1};
  ApiId PairId = Db.add(std::move(Pair));

  Program P = makeTemplate();
  P.Stmts.push_back(Stmt{Borrow, {1}, 2, parse("&Vec<String>")});
  P.Stmts.push_back(Stmt{HeadId, {2}, 3, parse("&Vec<String>")});
  P.Stmts.push_back(Stmt{HeadId, {3}, 4, parse("&Vec<String>")});
  P.Stmts.push_back(Stmt{PairId, {4, 3}, 5, parse("&Vec<String>")});
  P.Stmts.push_back(
      Stmt{IntoRawParts, {1}, 6, parse("(usize, usize, usize)")});
  P.Stmts.push_back(Stmt{Len, {5}, 7, parse("usize")});
  CompileResult R = check(P);
  ASSERT_FALSE(R.Success);
  EXPECT_EQ(R.Diag.Detail, ErrorDetail::Borrowing);

  // Using the diamond-merged borrow before the owner dies is fine.
  Program P2 = makeTemplate();
  P2.Stmts.push_back(Stmt{Borrow, {1}, 2, parse("&Vec<String>")});
  P2.Stmts.push_back(Stmt{HeadId, {2}, 3, parse("&Vec<String>")});
  P2.Stmts.push_back(Stmt{HeadId, {3}, 4, parse("&Vec<String>")});
  P2.Stmts.push_back(Stmt{PairId, {4, 3}, 5, parse("&Vec<String>")});
  P2.Stmts.push_back(Stmt{Len, {5}, 6, parse("usize")});
  P2.Stmts.push_back(
      Stmt{IntoRawParts, {1}, 7, parse("(usize, usize, usize)")});
  EXPECT_TRUE(check(P2).Success) << check(P2).Diag.Message;
}

} // namespace
