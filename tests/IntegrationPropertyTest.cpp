//===--- IntegrationPropertyTest.cpp - Cross-module property tests --------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Whole-pipeline invariants over every library model, parameterized
/// gtest style: accounting identities of RunResult, encoder soundness
/// w.r.t. the checker (Remark 1 of the paper), and bit-for-bit run
/// determinism.
///
//===----------------------------------------------------------------------===//

#include "core/SyRustDriver.h"

#include <gtest/gtest.h>

using namespace syrust;
using namespace syrust::core;
using namespace syrust::crates;
using namespace syrust::rustsim;

namespace {

RunConfig shortConfig() {
  RunConfig C;
  C.BudgetSeconds = 25;
  C.SnapshotInterval = 10;
  return C;
}

class PipelineOnEveryCrate : public ::testing::TestWithParam<size_t> {
protected:
  const CrateSpec &spec() const { return allCrates()[GetParam()]; }
};

TEST_P(PipelineOnEveryCrate, AccountingIdentitiesHold) {
  if (!spec().Info.SupportsSynthesis)
    return;
  RunResult R = SyRustDriver(spec(), shortConfig()).run();
  // Every synthesized case was either rejected or executed (executions
  // stop early only under StopOnFirstBug).
  EXPECT_EQ(R.Synthesized, R.Rejected + R.Executed) << spec().Info.Name;
  uint64_t CatSum = 0;
  for (const auto &[Cat, N] : R.ByCategory)
    CatSum += N;
  EXPECT_EQ(CatSum, R.Rejected) << spec().Info.Name;
  uint64_t DetSum = 0;
  for (const auto &[Det, N] : R.ByDetail)
    DetSum += N;
  EXPECT_EQ(DetSum, R.Rejected) << spec().Info.Name;
  // Coverage percentages are sane and the component bounds the library.
  EXPECT_GE(R.Coverage.ComponentLine, R.Coverage.LibraryLine);
  EXPECT_LE(R.Coverage.ComponentLine, 100.0);
  EXPECT_GE(R.Coverage.LibraryBranch, 0.0);
}

TEST_P(PipelineOnEveryCrate, EncoderSoundForOwnershipAndBorrows) {
  // Remark 1: programs emitted by the semantic-aware encoder satisfy the
  // compiler's ownership/borrow requirements. The only tolerated
  // Lifetime&Ownership rejections are the anonymous-parameterized-
  // lifetime corner case the paper explicitly does not support (7.1).
  if (!spec().Info.SupportsSynthesis)
    return;
  RunResult R = SyRustDriver(spec(), shortConfig()).run();
  auto Det = [&](ErrorDetail D) {
    auto It = R.ByDetail.find(D);
    return It == R.ByDetail.end() ? uint64_t{0} : It->second;
  };
  EXPECT_EQ(Det(ErrorDetail::Ownership), 0u) << spec().Info.Name;
  EXPECT_EQ(Det(ErrorDetail::Borrowing), 0u) << spec().Info.Name;
}

TEST_P(PipelineOnEveryCrate, RunsAreDeterministic) {
  if (!spec().Info.SupportsSynthesis)
    return;
  RunResult A = SyRustDriver(spec(), shortConfig()).run();
  RunResult B = SyRustDriver(spec(), shortConfig()).run();
  EXPECT_EQ(A.Synthesized, B.Synthesized) << spec().Info.Name;
  EXPECT_EQ(A.Rejected, B.Rejected) << spec().Info.Name;
  EXPECT_EQ(A.ByDetail, B.ByDetail) << spec().Info.Name;
  EXPECT_EQ(A.Coverage.ComponentLine, B.Coverage.ComponentLine)
      << spec().Info.Name;
  EXPECT_EQ(A.BugFound, B.BugFound) << spec().Info.Name;
}

TEST_P(PipelineOnEveryCrate, AblationModesDoNotCrash) {
  if (!spec().Info.SupportsSynthesis)
    return;
  RunConfig C = shortConfig();
  C.BudgetSeconds = 8;
  C.SemanticAware = false;
  RunResult RQ2 = SyRustDriver(spec(), C).run();
  EXPECT_EQ(RQ2.Synthesized, RQ2.Rejected + RQ2.Executed);
  RunConfig E = shortConfig();
  E.BudgetSeconds = 8;
  E.Mode = refine::RefinementMode::PurelyEager;
  E.EagerCap = 8;
  RunResult RQ3 = SyRustDriver(spec(), E).run();
  EXPECT_EQ(RQ3.Synthesized, RQ3.Rejected + RQ3.Executed);
}

INSTANTIATE_TEST_SUITE_P(AllCrates, PipelineOnEveryCrate,
                         ::testing::Range<size_t>(0, 30),
                         [](const ::testing::TestParamInfo<size_t> &Info) {
                           std::string Name =
                               allCrates()[Info.param].Info.Name;
                           for (char &C : Name)
                             if (C == '-' || C == '_')
                               C = '0';
                           return Name;
                         });

} // namespace
