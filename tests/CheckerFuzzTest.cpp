//===--- CheckerFuzzTest.cpp - Random-program robustness tests ------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Fuzzes the rustsim checker and the miri interpreter with structurally
/// well-formed but otherwise random programs (random APIs, random wiring
/// of previously declared variables, random declared types). Invariants:
/// the checker always terminates with a classified verdict, and any
/// checker-accepted program can be interpreted without tripping internal
/// assertions.
///
//===----------------------------------------------------------------------===//

#include "crates/CrateRegistry.h"
#include "miri/Interpreter.h"
#include "rustsim/Checker.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace syrust;
using namespace syrust::api;
using namespace syrust::crates;
using namespace syrust::miri;
using namespace syrust::program;
using namespace syrust::rustsim;

namespace {

/// Builds a random structurally valid program over \p Inst's API set:
/// every argument refers to some previously declared variable, arities
/// match, and declared types are plucked from plausible candidates.
Program randomProgram(CrateInstance &Inst, Rng &R, int Lines) {
  std::vector<ApiId> Apis;
  for (size_t I = 0; I < Inst.Db.size(); ++I)
    Apis.push_back(static_cast<ApiId>(I));

  Program P;
  P.Inputs = Inst.Inputs;
  int NumVars = static_cast<int>(Inst.Inputs.size());
  for (int L = 0; L < Lines; ++L) {
    ApiId Api = Apis[R.below(Apis.size())];
    const ApiSig &Sig = Inst.Db.get(Api);
    Stmt S;
    S.Api = Api;
    S.Out = NumVars;
    for (size_t J = 0; J < Sig.Inputs.size(); ++J)
      S.Args.push_back(
          static_cast<VarId>(R.below(static_cast<uint64_t>(NumVars))));
    // Declared type: sometimes the signature output, sometimes a random
    // template type, sometimes the unit type.
    switch (R.below(3)) {
    case 0:
      S.DeclType = Sig.Output;
      break;
    case 1:
      S.DeclType = Inst.Inputs[R.below(Inst.Inputs.size())].Ty;
      break;
    default:
      S.DeclType = Inst.Arena.unit();
      break;
    }
    P.Stmts.push_back(std::move(S));
    ++NumVars;
  }
  return P;
}

class CheckerFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CheckerFuzz, CheckerAlwaysClassifies) {
  const char *Names[] = {"bitvec", "crossbeam", "slab", "bstr",
                         "hashbrown"};
  for (const char *Name : Names) {
    auto Inst = findCrate(Name)->instantiate();
    Checker Check(Inst->Arena, Inst->Traits);
    Rng R(GetParam() * 97 + 13);
    for (int Round = 0; Round < 120; ++Round) {
      Program P =
          randomProgram(*Inst, R, 1 + static_cast<int>(R.below(5)));
      CompileResult Res = Check.check(P, Inst->Db);
      if (Res.Success)
        continue;
      // The verdict must carry a coherent category/detail pair.
      EXPECT_EQ(Res.Diag.Category, categoryOf(Res.Diag.Detail))
          << Name << ": " << Res.Diag.Message;
      EXPECT_FALSE(Res.Diag.Message.empty());
      EXPECT_GE(Res.Diag.Line, 0);
      EXPECT_LT(Res.Diag.Line, static_cast<int>(P.Stmts.size()));
    }
  }
}

TEST_P(CheckerFuzz, AcceptedProgramsInterpretSafely) {
  const char *Names[] = {"bitvec", "crossbeam-queue", "im-rc"};
  for (const char *Name : Names) {
    auto Inst = findCrate(Name)->instantiate();
    Checker Check(Inst->Arena, Inst->Traits);
    Rng R(GetParam() * 131 + 7);
    int Accepted = 0;
    for (int Round = 0; Round < 400; ++Round) {
      Program P =
          randomProgram(*Inst, R, 1 + static_cast<int>(R.below(4)));
      if (!Check.check(P, Inst->Db).Success)
        continue;
      ++Accepted;
      Interpreter Interp(Inst->Db, Inst->Traits, Inst->Registry,
                         Inst->Init, /*Cov=*/nullptr, GetParam());
      ExecResult Res = Interp.run(P); // Must not crash; UB is fine.
      (void)Res;
    }
    // Note: no lower bound on Accepted - random wiring almost never
    // typechecks (JCrasher/Randoop-style generation is exactly what the
    // paper argues cannot work for Rust). The property under test is
    // that accepted programs interpret without tripping assertions.
    (void)Accepted;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckerFuzz,
                         ::testing::Range<uint64_t>(1, 9));

} // namespace
