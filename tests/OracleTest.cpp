//===--- OracleTest.cpp - Tests for the agreement oracle ------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "oracle/AuditRunner.h"
#include "rustsim/Checker.h"
#include "types/TypeParser.h"

#include <gtest/gtest.h>

using namespace syrust;
using namespace syrust::api;
using namespace syrust::core;
using namespace syrust::oracle;
using namespace syrust::program;
using namespace syrust::rustsim;
using namespace syrust::types;

namespace {

//===----------------------------------------------------------------------===//
// Disagreement taxonomy
//===----------------------------------------------------------------------===//

TEST(OracleTaxonomy, ExpectedDetailsAreTheRefinementDiet) {
  // Checker-stricter-by-design rejections are expected; the dimensions
  // Rules 1-9 claim to encode are not.
  EXPECT_TRUE(isExpectedDetail(ErrorDetail::TraitBound));
  EXPECT_TRUE(isExpectedDetail(ErrorDetail::Polymorphism));
  EXPECT_TRUE(isExpectedDetail(ErrorDetail::DefaultTypeParam));
  EXPECT_TRUE(isExpectedDetail(ErrorDetail::AnonLifetime));
  EXPECT_TRUE(isExpectedDetail(ErrorDetail::Arity));
  EXPECT_TRUE(isExpectedDetail(ErrorDetail::MethodNotFound));
  EXPECT_FALSE(isExpectedDetail(ErrorDetail::Ownership));
  EXPECT_FALSE(isExpectedDetail(ErrorDetail::Borrowing));
  EXPECT_FALSE(isExpectedDetail(ErrorDetail::TypeMismatch));
  EXPECT_FALSE(isExpectedDetail(ErrorDetail::None));
}

//===----------------------------------------------------------------------===//
// Counterexample minimization
//===----------------------------------------------------------------------===//

/// Small Vec-like library (the CheckerTest fixture's shape) for driving
/// the minimizer on hand-built disagreeing programs.
class MinimizerFixture : public ::testing::Test {
protected:
  TypeArena Arena;
  TypeParser Parser{Arena, {"T"}};
  TraitEnv Traits{Arena};
  ApiDatabase Db;

  ApiId LetMut, Borrow, BorrowMut, IntoRawParts;

  const Type *parse(const std::string &S) {
    const Type *T = Parser.parse(S);
    EXPECT_NE(T, nullptr) << Parser.error();
    return T;
  }

  void SetUp() override {
    Traits.addDefaultPrimImpls();
    auto B = addBuiltinApis(Db, Arena);
    LetMut = B[0];
    Borrow = B[1];
    BorrowMut = B[2];
    ApiSig Sig;
    Sig.Name = "Vec::into_raw_parts";
    Sig.Inputs = {parse("Vec<T>")};
    Sig.Output = parse("(usize, usize, usize)");
    IntoRawParts = Db.add(std::move(Sig));
  }
};

TEST_F(MinimizerFixture, ConvergesToMinimalUseAfterMove) {
  // A 4-line use-after-move with a junk line and an indirection through
  // LetMut. The minimizer must both DROP the junk and SUBSTITUTE the
  // LetMut copy for the original owner (unpinning the producer line),
  // converging to the 2-line core: consume v twice.
  Program P;
  P.Inputs = {{"s", parse("String")}, {"v", parse("Vec<String>")}};
  P.Stmts.push_back(Stmt{LetMut, {1}, 2, parse("Vec<String>")});
  P.Stmts.push_back(Stmt{LetMut, {0}, 3, parse("String")}); // Junk.
  P.Stmts.push_back(
      Stmt{IntoRawParts, {2}, 4, parse("(usize, usize, usize)")});
  P.Stmts.push_back(
      Stmt{IntoRawParts, {2}, 5, parse("(usize, usize, usize)")});

  Checker Check(Arena, Traits);
  CompileResult Original = Check.check(P, Db);
  ASSERT_FALSE(Original.Success);
  ASSERT_EQ(Original.Diag.Detail, ErrorDetail::Ownership);

  MinimizedDisagreement Min =
      minimizeDisagreement(Arena, Traits, Db, P, ErrorDetail::Ownership);
  EXPECT_EQ(Min.Program.Stmts.size(), 2u);
  EXPECT_GT(Min.Steps, 0u);
  // The repro still fails with exactly the original detail.
  CompileResult R = Check.check(Min.Program, Db);
  ASSERT_FALSE(R.Success);
  EXPECT_EQ(R.Diag.Detail, ErrorDetail::Ownership);
}

TEST_F(MinimizerFixture, MinimizationIsIdempotent) {
  // A fixpoint stays a fixpoint: re-minimizing the minimal repro cannot
  // shrink it further (convergence, not oscillation).
  Program P;
  P.Inputs = {{"v", parse("Vec<String>")}};
  P.Stmts.push_back(
      Stmt{IntoRawParts, {0}, 1, parse("(usize, usize, usize)")});
  P.Stmts.push_back(
      Stmt{IntoRawParts, {0}, 2, parse("(usize, usize, usize)")});
  MinimizedDisagreement Min =
      minimizeDisagreement(Arena, Traits, Db, P, ErrorDetail::Ownership);
  EXPECT_EQ(Min.Program.Stmts.size(), 2u);
  MinimizedDisagreement Again = minimizeDisagreement(
      Arena, Traits, Db, Min.Program, ErrorDetail::Ownership);
  EXPECT_EQ(Again.Program.Stmts.size(), Min.Program.Stmts.size());
}

//===----------------------------------------------------------------------===//
// Matrix expansion and validation
//===----------------------------------------------------------------------===//

TEST(AuditSpecTest, MatrixOrderIsCratesOuterSeedsInner) {
  AuditSpec Spec;
  Spec.Crates = {"b", "a"};
  Spec.SeedBegin = 5;
  Spec.SeedEnd = 6;
  std::vector<AuditJob> Jobs = expandAuditMatrix(Spec);
  ASSERT_EQ(Jobs.size(), 4u);
  EXPECT_EQ(Jobs[0].Crate, "b");
  EXPECT_EQ(Jobs[0].Seed, 5u);
  EXPECT_EQ(Jobs[1].Crate, "b");
  EXPECT_EQ(Jobs[1].Seed, 6u);
  EXPECT_EQ(Jobs[2].Crate, "a");
  EXPECT_EQ(Jobs[3].Index, 3u);
  EXPECT_EQ(Jobs[3].Config.Seed, 6u);
}

TEST(AuditSpecTest, ValidateRejectsEachBadField) {
  Session S;
  AuditSpec Spec;
  Spec.Crates = {"slab", "slab", "no-such-crate"};
  Spec.SeedBegin = 9;
  Spec.SeedEnd = 3;
  Spec.Jobs = 0;
  Spec.Base.MaxModels = 0;
  std::vector<std::string> Errors = Spec.validate(S);
  // Duplicate crate, unknown crate, empty seed range, bad job count,
  // zero model cap: one specific message each.
  EXPECT_EQ(Errors.size(), 5u);
}

//===----------------------------------------------------------------------===//
// End-to-end audits (real crate models)
//===----------------------------------------------------------------------===//

TEST(OracleAudit, AlignedEncoderIsCleanOnRealCrates) {
  // The acceptance invariant at test scale: no unexpected-category
  // disagreement anywhere in the audited streams.
  Session S;
  OracleConfig Config;
  Config.MaxModels = 300;
  for (const char *Crate : {"slab", "base16"}) {
    AuditResult R = auditOne(S, Crate, Config);
    EXPECT_TRUE(R.Supported);
    EXPECT_EQ(R.ModelsReplayed, 300u) << Crate;
    EXPECT_EQ(R.UnexpectedTotal, 0u) << Crate;
    EXPECT_TRUE(R.Unexpected.empty()) << Crate;
    EXPECT_GT(R.AgreePass, 0u) << Crate;
  }
}

TEST(OracleAudit, UnsupportedCrateReportsUnsupported) {
  Session S;
  const crates::CrateSpec *Closure = nullptr;
  for (const crates::CrateSpec &Spec : S.crates())
    if (!Spec.Info.SupportsSynthesis)
      Closure = &Spec;
  ASSERT_NE(Closure, nullptr);
  AuditResult R = auditOne(S, Closure->Info.Name, OracleConfig{});
  EXPECT_FALSE(R.Supported);
  EXPECT_EQ(R.ModelsReplayed, 0u);
}

TEST(OracleAudit, CanaryWeakenedEncoderIsCaughtAndMinimized) {
  // The oracle's self-test: seed a real encoder bug (drop the
  // consumption-kill clauses) and the harness MUST catch it as
  // unexpected Ownership disagreements, each shrunk to a small repro.
  Session S;
  OracleConfig Config;
  Config.MaxModels = 500;
  Config.WeakenConsumptionKills = true;
  AuditResult R = auditOne(S, "slab", Config);
  ASSERT_GT(R.UnexpectedTotal, 0u)
      << "a seeded encoder bug escaped the oracle";
  ASSERT_EQ(R.Unexpected.size(), R.UnexpectedTotal);
  for (const Disagreement &D : R.Unexpected) {
    EXPECT_EQ(D.Detail, ErrorDetail::Ownership);
    EXPECT_GT(D.Lines, 0);
    EXPECT_GT(D.MinimizedLines, 0);
    EXPECT_LE(D.MinimizedLines, D.Lines);
    EXPECT_FALSE(D.MinimizedSource.empty());
    EXPECT_GT(D.MinimizerSteps, 0u);
  }
  EXPECT_GT(R.MinimizerSteps, 0u);

  // Same configuration without the seeded bug: clean.
  Config.WeakenConsumptionKills = false;
  AuditResult Clean = auditOne(S, "slab", Config);
  EXPECT_EQ(Clean.UnexpectedTotal, 0u);
}

TEST(OracleAudit, ReportIsByteIdenticalForAnyJobCount) {
  // The campaign determinism contract, inherited: same matrix, any pool
  // width, byte-identical audit document.
  Session S;
  AuditSpec Spec;
  Spec.Crates = {"slab", "base16"};
  Spec.SeedBegin = 2021;
  Spec.SeedEnd = 2022;
  Spec.Base.MaxModels = 150;
  ASSERT_TRUE(Spec.validate(S).empty());

  Spec.Jobs = 1;
  AuditRunResult R1 = runAudit(S, Spec);
  Spec.Jobs = 4;
  AuditRunResult R4 = runAudit(S, Spec);

  EXPECT_EQ(auditToJson(Spec, R1).dump(), auditToJson(Spec, R4).dump());
  EXPECT_EQ(R1.Totals.ModelsReplayed, 4u * 150u);
  EXPECT_TRUE(R1.clean());
  // Merged oracle.* counters are integer sums: pool-width independent.
  EXPECT_EQ(R1.MergedCounters, R4.MergedCounters);
  EXPECT_EQ(R1.MergedCounters.at("oracle.models_replayed"), 4u * 150u);
}

} // namespace
