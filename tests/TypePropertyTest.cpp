//===--- TypePropertyTest.cpp - Property tests for the type algebra -------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Randomized laws over the subtype/unification machinery the encoder and
/// checker share. A small generator produces random types (with and
/// without variables); the laws below must hold for every sample.
///
//===----------------------------------------------------------------------===//

#include "support/Rng.h"
#include "types/Subtyping.h"
#include "types/TypeParser.h"

#include <gtest/gtest.h>

using namespace syrust;
using namespace syrust::types;

namespace {

/// Random type generator over a fixed vocabulary.
class TypeGen {
public:
  TypeGen(TypeArena &Arena, Rng &R) : Arena(Arena), R(R) {}

  /// A random type; \p AllowVars enables type variables, \p Depth bounds
  /// recursion.
  const Type *gen(bool AllowVars, int Depth = 3) {
    uint64_t Roll = R.below(AllowVars ? 6 : 5);
    if (Depth <= 0)
      Roll = R.below(AllowVars ? 2 : 1) == 0 ? 0 : 5;
    switch (Roll) {
    case 0: {
      static const char *Prims[] = {"i32", "u8", "usize", "bool"};
      return Arena.prim(Prims[R.below(4)]);
    }
    case 1:
      return Arena.named("String");
    case 2: {
      static const char *Heads[] = {"Vec", "Option", "Box"};
      return Arena.named(Heads[R.below(3)],
                         {gen(AllowVars, Depth - 1)});
    }
    case 3:
      return Arena.ref(gen(AllowVars, Depth - 1), R.chance(0.5));
    case 4:
      return Arena.tuple(
          {gen(AllowVars, Depth - 1), gen(AllowVars, Depth - 1)});
    default: {
      static const char *Vars[] = {"T", "U"};
      return Arena.typeVar(Vars[R.below(2)]);
    }
    }
  }

private:
  TypeArena &Arena;
  Rng &R;
};

class TypeLaws : public ::testing::TestWithParam<uint64_t> {
protected:
  TypeArena Arena;
};

TEST_P(TypeLaws, SubtypingIsReflexive) {
  Rng R(GetParam());
  TypeGen Gen(Arena, R);
  for (int I = 0; I < 200; ++I) {
    const Type *T = Gen.gen(/*AllowVars=*/false);
    EXPECT_TRUE(isSubtype(T, T)) << T->str();
  }
}

TEST_P(TypeLaws, MatchedSubstitutionReconstructsActual) {
  // If concrete A matches pattern P (without top-level coercion in play),
  // then applying the resulting substitution to P yields a type that A is
  // still a subtype of - and an exact equality when A == P mod vars.
  Rng R(GetParam() * 31 + 5);
  TypeGen Gen(Arena, R);
  for (int I = 0; I < 300; ++I) {
    const Type *Pattern = Gen.gen(/*AllowVars=*/true);
    const Type *Actual = Gen.gen(/*AllowVars=*/false);
    Substitution S;
    if (!isSubtype(Actual, Pattern, S))
      continue;
    const Type *Applied = applySubst(Arena, Pattern, S);
    EXPECT_TRUE(Applied->isConcrete())
        << Pattern->str() << " matched by " << Actual->str();
    EXPECT_TRUE(isSubtype(Actual, Applied))
        << Actual->str() << " !<= " << Applied->str() << " (pattern "
        << Pattern->str() << ")";
  }
}

TEST_P(TypeLaws, UnifiableIsSymmetricOnVarFreePairs) {
  Rng R(GetParam() * 77 + 3);
  TypeGen Gen(Arena, R);
  for (int I = 0; I < 300; ++I) {
    const Type *A = Gen.gen(false);
    const Type *B = Gen.gen(false);
    Substitution S1, S2;
    bool AB = unifiable(A, B, S1);
    bool BA = unifiable(B, A, S2);
    if (A == B) {
      EXPECT_TRUE(AB);
      EXPECT_TRUE(BA);
    }
    // Mutability coercion is directional (&mut T <= &T), so only check
    // symmetry when neither side is a reference at the top level.
    if (!A->isRef() && !B->isRef()) {
      EXPECT_EQ(AB, BA) << A->str() << " vs " << B->str();
    }
  }
}

TEST_P(TypeLaws, SubtypeImpliesUnifiable) {
  Rng R(GetParam() * 13 + 1);
  TypeGen Gen(Arena, R);
  for (int I = 0; I < 300; ++I) {
    const Type *A = Gen.gen(false);
    const Type *P = Gen.gen(true);
    Substitution S1;
    if (!isSubtype(A, P, S1))
      continue;
    Substitution S2;
    EXPECT_TRUE(unifiable(A, P, S2))
        << A->str() << " <= " << P->str() << " but not unifiable";
  }
}

TEST_P(TypeLaws, RenameIsStructurePreserving) {
  Rng R(GetParam() * 101 + 9);
  TypeGen Gen(Arena, R);
  for (int I = 0; I < 200; ++I) {
    const Type *T = Gen.gen(true);
    const Type *Renamed = renameVars(Arena, T, "x");
    EXPECT_EQ(T->isConcrete(), Renamed->isConcrete());
    if (T->isConcrete()) {
      EXPECT_EQ(T, Renamed) << "renaming must not touch concrete types";
    } else {
      // Renaming is invertible up to variable names: the renamed type
      // unifies with the original.
      Substitution S;
      EXPECT_TRUE(unifiable(T, Renamed, S));
    }
  }
}

TEST_P(TypeLaws, InterningIsCanonical) {
  Rng R(GetParam() * 7 + 2);
  TypeGen Gen(Arena, R);
  for (int I = 0; I < 200; ++I) {
    const Type *T = Gen.gen(true);
    // Re-parsing the rendering in a scope where T's variables are known
    // yields the same interned pointer.
    TypeParser Parser(Arena, {"T", "U"});
    const Type *Reparsed = Parser.parse(T->str());
    ASSERT_NE(Reparsed, nullptr) << T->str();
    EXPECT_EQ(Reparsed, T) << T->str();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TypeLaws,
                         ::testing::Range<uint64_t>(1, 11));

} // namespace
