//===--- ServeProtocolTest.cpp - Serve wire-format tests ------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
//
// The framing layer is what lets the daemon tell a hostile client from a
// slow one, so these tests are deliberately unfriendly: dribbled bytes,
// truncated frames, absurd length prefixes.
//
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"

#include <gtest/gtest.h>

using namespace syrust;
using namespace syrust::serve;

namespace {

TEST(ServeProtocolTest, EncodeDecodeRoundTrip) {
  FrameDecoder D;
  std::string Frame = encodeFrame("{\"verb\":\"ping\"}");
  ASSERT_EQ(4u + 15u, Frame.size());
  D.feed(Frame.data(), Frame.size());
  std::string Payload;
  ASSERT_EQ(FrameDecoder::Status::Frame, D.next(Payload));
  EXPECT_EQ("{\"verb\":\"ping\"}", Payload);
  EXPECT_EQ(FrameDecoder::Status::NeedMore, D.next(Payload));
}

TEST(ServeProtocolTest, LengthPrefixIsBigEndian) {
  std::string Frame = encodeFrame("ab");
  EXPECT_EQ('\0', Frame[0]);
  EXPECT_EQ('\0', Frame[1]);
  EXPECT_EQ('\0', Frame[2]);
  EXPECT_EQ('\2', Frame[3]);
}

TEST(ServeProtocolTest, DribbledBytesReassemble) {
  // One byte at a time — the slow-client path.
  FrameDecoder D;
  std::string Frame = encodeFrame("hello");
  std::string Payload;
  for (size_t I = 0; I + 1 < Frame.size(); ++I) {
    D.feed(Frame.data() + I, 1);
    ASSERT_EQ(FrameDecoder::Status::NeedMore, D.next(Payload));
  }
  D.feed(Frame.data() + Frame.size() - 1, 1);
  ASSERT_EQ(FrameDecoder::Status::Frame, D.next(Payload));
  EXPECT_EQ("hello", Payload);
}

TEST(ServeProtocolTest, BackToBackFramesInOneRead) {
  FrameDecoder D;
  std::string Two = encodeFrame("one") + encodeFrame("two");
  D.feed(Two.data(), Two.size());
  std::string Payload;
  ASSERT_EQ(FrameDecoder::Status::Frame, D.next(Payload));
  EXPECT_EQ("one", Payload);
  ASSERT_EQ(FrameDecoder::Status::Frame, D.next(Payload));
  EXPECT_EQ("two", Payload);
  EXPECT_EQ(FrameDecoder::Status::NeedMore, D.next(Payload));
}

TEST(ServeProtocolTest, TruncatedFrameStaysPending) {
  // A client that dies mid-frame leaves the decoder waiting, never
  // delivering a half frame.
  FrameDecoder D;
  std::string Frame = encodeFrame("abcdef");
  D.feed(Frame.data(), Frame.size() - 3);
  std::string Payload;
  EXPECT_EQ(FrameDecoder::Status::NeedMore, D.next(Payload));
  EXPECT_EQ(FrameDecoder::Status::NeedMore, D.next(Payload));
}

TEST(ServeProtocolTest, OversizedPrefixIsStickyPoison) {
  // A 4 GiB length prefix must be refused, and the decoder must stay
  // refusing: the stream position is unrecoverable.
  FrameDecoder D;
  const char Evil[4] = {'\xff', '\xff', '\xff', '\xff'};
  D.feed(Evil, 4);
  std::string Payload;
  EXPECT_EQ(FrameDecoder::Status::Oversized, D.next(Payload));
  std::string Fine = encodeFrame("innocent");
  D.feed(Fine.data(), Fine.size());
  EXPECT_EQ(FrameDecoder::Status::Oversized, D.next(Payload));
}

TEST(ServeProtocolTest, MaxFrameBoundaryExact) {
  // Exactly MaxFrameBytes is legal; one more is not. Only the prefix is
  // fed — the decoder must classify from the length alone.
  auto prefixOf = [](uint32_t N) {
    std::string P(4, '\0');
    P[0] = static_cast<char>(N >> 24);
    P[1] = static_cast<char>(N >> 16);
    P[2] = static_cast<char>(N >> 8);
    P[3] = static_cast<char>(N);
    return P;
  };
  std::string Payload;
  FrameDecoder AtLimit;
  std::string P = prefixOf(MaxFrameBytes);
  AtLimit.feed(P.data(), 4);
  EXPECT_EQ(FrameDecoder::Status::NeedMore, AtLimit.next(Payload));
  FrameDecoder PastLimit;
  P = prefixOf(MaxFrameBytes + 1);
  PastLimit.feed(P.data(), 4);
  EXPECT_EQ(FrameDecoder::Status::Oversized, PastLimit.next(Payload));
}

TEST(ServeProtocolTest, ResponseRoundTripsThroughTheWire) {
  cli::Response R;
  R.ExitCode = cli::ExitFinding;
  R.Output = "totals: 1 bug\n";
  R.Error = "";
  R.Files.push_back({"out/aggregate.json", "{\"a\":1}\n"});
  R.Files.push_back({"out/trace.json", "[]\n"});

  json::Value Id = json::Value::integer(42);
  json::Value Doc = responseToJson(R, Id);
  // As over the socket: bytes out, bytes in.
  json::ParseResult P = json::parse(Doc.dump());
  ASSERT_TRUE(P.Ok);
  EXPECT_EQ(42, P.Val.get("id").asInt());

  cli::Response Back;
  std::string Err;
  ASSERT_TRUE(responseFromJson(P.Val, Back, Err)) << Err;
  EXPECT_EQ(R.ExitCode, Back.ExitCode);
  EXPECT_EQ(R.Output, Back.Output);
  EXPECT_EQ(R.Error, Back.Error);
  ASSERT_EQ(2u, Back.Files.size());
  EXPECT_EQ(R.Files[0].first, Back.Files[0].first);
  EXPECT_EQ(R.Files[0].second, Back.Files[0].second);
  EXPECT_EQ(R.Files[1].second, Back.Files[1].second);
}

TEST(ServeProtocolTest, ErrorResponseCarriesTheMessage) {
  json::Value Doc =
      errorResponseJson("unknown member 'bogus'", json::Value::null());
  cli::Response Out;
  std::string Err;
  EXPECT_FALSE(responseFromJson(Doc, Out, Err));
  EXPECT_NE(std::string::npos, Err.find("unknown member 'bogus'"));
}

TEST(ServeProtocolTest, MalformedResponseDocumentsAreRejected) {
  cli::Response Out;
  std::string Err;
  json::ParseResult P = json::parse("{\"ok\":true}");
  ASSERT_TRUE(P.Ok);
  EXPECT_FALSE(responseFromJson(P.Val, Out, Err));
  P = json::parse("[1,2,3]");
  ASSERT_TRUE(P.Ok);
  EXPECT_FALSE(responseFromJson(P.Val, Out, Err));
}

} // namespace
