//===--- custom_library.cpp - Test your own library model -----------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Shows the workflow a downstream user follows to point the framework at
/// their own library: describe the API surface with CrateBuilder (type
/// signatures, trait impls, a template, executable semantics), then run
/// the driver. The toy "ringbuf" crate below hides a double-free - its
/// `drain` destroys the buffer but the ring's drop glue frees it again -
/// which the pipeline finds automatically.
///
//===----------------------------------------------------------------------===//

#include "core/SyRustDriver.h"
#include "crates/CrateBuilder.h"

#include <cstdio>

using namespace syrust;
using namespace syrust::core;
using namespace syrust::crates;
using namespace syrust::miri;

namespace {

void buildRingbuf(CrateInstance &I) {
  CrateBuilder B(I, {"T"});
  B.impl("Clone", "String");

  // Template: fn test(n: usize, s: String) { /* INSERT */ }
  B.scalarInput("n", "usize", 4);
  B.stringInput("s", "String", "elem");

  {
    ApiDecl D = decl("Ring::with_capacity", {"usize"}, "Ring<String>",
                     SemKind::AllocContainer);
    D.Pinned = true;
    B.api(D);
  }
  {
    ApiDecl D = decl("Ring::push", {"&mut Ring<String>", "String"}, "()",
                     SemKind::ContainerPush);
    B.api(D);
  }
  {
    ApiDecl D = decl("Ring::len", {"&Ring<String>"}, "usize",
                     SemKind::ContainerLen);
    B.api(D);
  }
  {
    // THE BUG: drain() frees the backing buffer but forgets to clear the
    // ring's pointer, so the ring's drop glue frees it a second time.
    ApiDecl D = decl("Ring::drain", {"&mut Ring<String>"}, "usize",
                     SemKind::Custom);
    D.Pinned = true;
    D.Unsafe = true;
    D.Custom = [](InterpCtx &Ctx) {
      Value &Ring = Ctx.deref(0);
      Value Out;
      Out.Ty = Ctx.outType();
      Out.Int = Ring.Len;
      Ring.Len = 0;
      if (Ring.Alloc >= 0)
        Ctx.heap().free(Ring.Alloc, Ctx.line());
      // Missing: Ring.Alloc = -1;  <- the double-free.
      return Out;
    };
    B.api(D);
  }
  B.finish(/*ComponentPadLines=*/8, /*ComponentPadBranches=*/2,
           /*LibraryExtraLines=*/20, /*LibraryExtraBranches=*/4,
           /*MaxLen=*/4);
}

} // namespace

int main() {
  CrateSpec Ringbuf;
  Ringbuf.Info = {"ringbuf-demo", "DS", 0, false, "ringbuf::Ring",
                  "local", true};
  Ringbuf.Build = buildRingbuf;

  RunConfig Config;
  Config.BudgetSeconds = 600;
  Config.NumApis = 4;
  Config.StopOnFirstBug = true;
  RunResult R = SyRustDriver(Ringbuf, Config).run();

  std::printf("synthesized %llu tests (%llu rejected)\n",
              static_cast<unsigned long long>(R.Synthesized),
              static_cast<unsigned long long>(R.Rejected));
  if (!R.BugFound) {
    std::printf("no bug found - raise the budget\n");
    return 1;
  }
  std::printf("found a bug after %.1f simulated seconds:\n\n%s\n%s\n",
              R.TimeToBug, R.BugProgram.c_str(),
              R.FirstBug.Message.c_str());
  return 0;
}
