//===--- bughunt_bitvec.cpp - Reproduce the paper's flagship bug ----------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Runs the full SyRust pipeline against the bitvec library model until
/// the use-after-free of Figure 8 is synthesized: a five-call chain
/// through ownership movement (`into_boxed_bitslice` consumes the vector)
/// that a loop-based fuzzing harness cannot express, which is exactly why
/// the paper argues for synthesis-driven testing.
///
//===----------------------------------------------------------------------===//

#include "core/SyRustDriver.h"

#include <cstdio>

using namespace syrust;
using namespace syrust::core;
using namespace syrust::crates;

int main() {
  const CrateSpec *Bitvec = findCrate("bitvec");
  std::printf("hunting in %s (%s), tested component %s\n",
              Bitvec->Info.Name.c_str(), Bitvec->Info.RevHash.c_str(),
              Bitvec->Info.Subcomponent.c_str());
  std::printf("expected: %s in >= %d lines\n\n",
              Bitvec->Bug->BugType.c_str(), Bitvec->Bug->MinLines);

  RunConfig Config;
  Config.BudgetSeconds = 8000; // Simulated seconds; ~2 s of real time.
  Config.StopOnFirstBug = true;
  RunResult R = SyRustDriver(*Bitvec, Config).run();

  std::printf("synthesized %llu test cases (%llu rejected), reached "
              "length %d\n",
              static_cast<unsigned long long>(R.Synthesized),
              static_cast<unsigned long long>(R.Rejected),
              R.MaxLenReached);
  if (!R.BugFound) {
    std::printf("no bug found within budget - raise "
                "Config.BudgetSeconds\n");
    return 1;
  }
  std::printf("\nfound after %.1f simulated seconds, %d lines:\n\n%s\n",
              R.TimeToBug, R.BugLines, R.BugProgram.c_str());
  std::printf("miri verdict: %s\n", R.FirstBug.Message.c_str());
  std::printf("\nNote the chain: the bitvector is created in-test, cast "
              "mutable, borrowed,\ngrown (forcing a reallocation), then "
              "converted - dropping the BitBox reads\nthrough the stale "
              "pre-growth pointer. Ownership moves out of the bitvector\n"
              "at the conversion, so no fuzz loop could re-run this body "
              "(Section 7.1).\n");
  return 0;
}
