//===--- refinement_demo.cpp - Watch hybrid API refinement at work --------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Demonstrates Section 5 end to end on the Vec example: the polymorphic
/// constructor is eagerly concretized, trait-invalid concretizations are
/// removed on compiler feedback, and Vec::pop's polymorphic output is
/// duplicated at its confirmed concrete instantiation with the original
/// blocked on that combination. The API database is printed before and
/// after so the refinement steps are visible.
///
//===----------------------------------------------------------------------===//

#include "refine/RefinementEngine.h"
#include "rustsim/Checker.h"
#include "synth/Synthesizer.h"
#include "types/TypeParser.h"

#include <cstdio>

using namespace syrust;
using namespace syrust::api;
using namespace syrust::program;
using namespace syrust::refine;
using namespace syrust::types;

namespace {

void dumpDatabase(const char *Title, const ApiDatabase &Db) {
  std::printf("%s\n", Title);
  for (size_t I = 0; I < Db.size(); ++I) {
    const ApiSig &Sig = Db.get(static_cast<ApiId>(I));
    if (Sig.Builtin != BuiltinKind::None)
      continue;
    std::string Ins;
    for (size_t J = 0; J < Sig.Inputs.size(); ++J)
      Ins += (J ? ", " : "") + Sig.Inputs[J]->str();
    std::printf("  [%zu]%s %s(%s) -> %s%s\n", I,
                Db.isBanned(static_cast<ApiId>(I)) ? " [banned]" : "",
                Sig.Name.c_str(), Ins.c_str(), Sig.Output->str().c_str(),
                Sig.RefinedFrom != ApiIdInvalid ? "  (refined)" : "");
  }
  std::printf("\n");
}

} // namespace

int main() {
  TypeArena Arena;
  TypeParser Parser(Arena, {"T"});
  TraitEnv Traits(Arena);
  Traits.addDefaultPrimImpls();
  Traits.addImpl("Clone", Arena.named("String"));

  auto Ty = [&](const char *Spec) { return Parser.parse(Spec); };

  ApiDatabase Db;
  addBuiltinApis(Db, Arena);
  auto AddApi = [&](const char *Name, std::vector<const Type *> Ins,
                    const Type *Out,
                    std::vector<std::pair<std::string, std::string>>
                        Bounds = {}) {
    ApiSig Sig;
    Sig.Name = Name;
    Sig.Inputs = std::move(Ins);
    Sig.Output = Out;
    Sig.Bounds = std::move(Bounds);
    return Db.add(std::move(Sig));
  };
  AddApi("Vec::new", {}, Ty("Vec<T>"), {{"T", "Clone"}});
  AddApi("Vec::push", {Ty("&mut Vec<T>"), Ty("T")}, Ty("()"));
  AddApi("Vec::pop", {Ty("&mut Vec<T>")}, Ty("Option<T>"));
  AddApi("Option::is_some", {Ty("&Option<String>")}, Ty("bool"));

  std::vector<TemplateInput> Template{{"s", Ty("String")},
                                      {"v", Ty("Vec<String>")},
                                      {"n", Ty("usize")}};

  dumpDatabase("API database as collected:", Db);

  RefinementEngine Engine(Arena, Db, RefinementMode::Hybrid);
  Engine.initialize(Template);
  dumpDatabase("after eager concretization of Vec::new (Section 5.1):",
               Db);

  synth::Synthesizer Synth(Arena, Traits, Db, Template, 4);
  rustsim::Checker Check(Arena, Traits);
  int Total = 0, Errors = 0;
  while (auto P = Synth.next()) {
    ++Total;
    auto R = Check.check(*P, Db);
    bool Changed =
        R.Success ? Engine.onSuccess(*P) : Engine.onDiagnostic(R.Diag);
    Errors += R.Success ? 0 : 1;
    if (Changed) {
      std::printf("refinement step after test %d (%s)\n", Total,
                  R.Success ? "success: duplicate-and-block"
                            : R.Diag.Message.c_str());
      Synth.notifyDatabaseChanged();
    }
    if (Total >= 500)
      break;
  }

  std::printf("\n");
  dumpDatabase("after the refinement loop (Sections 5.2/5.3):", Db);
  const auto &Stats = Engine.stats();
  std::printf("ran %d tests, %d rejected; eager=%llu traitRemovals=%llu "
              "duplications=%llu comboBlocks=%llu\n",
              Total, Errors,
              static_cast<unsigned long long>(Stats.EagerConcretizations),
              static_cast<unsigned long long>(Stats.TraitRemovals),
              static_cast<unsigned long long>(Stats.OutputDuplications),
              static_cast<unsigned long long>(Stats.ComboBlocks));
  return 0;
}
