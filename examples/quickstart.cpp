//===--- quickstart.cpp - Synthesize test cases for a small library -------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Quickstart: declare a handful of Vec-like API type signatures, give the
/// synthesizer a code template (the paper's Figure 2), and stream
/// well-typed Rust test cases. Every emitted program is re-checked with
/// the rustsim compiler to show the paper's headline property: the
/// semantic-aware encoding makes rejections rare.
///
/// Build and run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "api/ApiDatabase.h"
#include "rustsim/Checker.h"
#include "synth/Synthesizer.h"
#include "types/TypeParser.h"

#include <cstdio>

using namespace syrust;
using namespace syrust::api;
using namespace syrust::program;
using namespace syrust::synth;
using namespace syrust::types;

int main() {
  // 1. A type world: arena + trait database.
  TypeArena Arena;
  TypeParser Parser(Arena, {"T"});
  TraitEnv Traits(Arena);
  Traits.addDefaultPrimImpls();
  Traits.addImpl("Clone", Arena.named("String"));

  auto Ty = [&](const char *Spec) { return Parser.parse(Spec); };

  // 2. The API specifications under test (collected signatures in the
  //    paper; hand-written here).
  ApiDatabase Db;
  addBuiltinApis(Db, Arena); // let mut / & / &mut (Section 6.2).
  auto AddApi = [&](const char *Name, std::vector<const Type *> Ins,
                    const Type *Out) {
    ApiSig Sig;
    Sig.Name = Name;
    Sig.Inputs = std::move(Ins);
    Sig.Output = Out;
    return Db.add(std::move(Sig));
  };
  AddApi("Vec::push", {Ty("&mut Vec<T>"), Ty("T")}, Ty("()"));
  AddApi("Vec::pop", {Ty("&mut Vec<T>")}, Ty("Option<T>"));
  AddApi("Vec::len", {Ty("&Vec<T>")}, Ty("usize"));
  AddApi("Vec::into_raw_parts", {Ty("Vec<T>")},
         Ty("(usize, usize, usize)"));

  // 3. The code template of Figure 2: test(s: String, v: Vec<String>).
  std::vector<TemplateInput> Template{{"s", Ty("String")},
                                      {"v", Ty("Vec<String>")}};

  // 4. Synthesize programs of up to 4 lines and re-check each one.
  Synthesizer Synth(Arena, Traits, Db, Template, /*MaxLines=*/4);
  rustsim::Checker Check(Arena, Traits);

  int Total = 0, Rejected = 0, Shown = 0;
  while (auto P = Synth.next()) {
    ++Total;
    auto Result = Check.check(*P, Db);
    if (!Result.Success)
      ++Rejected;
    if (Shown < 8) {
      ++Shown;
      std::printf("--- test case %d (%s)\n%s", Total,
                  Result.Success ? "compiles" : Result.Diag.Message.c_str(),
                  P->render(Db).c_str());
    }
  }

  std::printf("\nsynthesized %d test cases; %d rejected by the checker "
              "(%.2f%%)\n",
              Total, Rejected,
              Total ? 100.0 * Rejected / Total : 0.0);
  std::printf("(the paper's Figure 6 reports well under 1%% for most "
              "libraries)\n");
  return 0;
}
