//===--- figure1_walkthrough.cpp - Section 2 of the paper, executed -------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Walks through Section 2's running example with the real machinery:
/// the Figure 1 program is written as TEXT, parsed back into a Program,
/// compiled with the rustsim checker, and then each of the section's
/// "this variant no longer typechecks" claims is demonstrated by actually
/// compiling the broken variant and printing the diagnostic.
///
//===----------------------------------------------------------------------===//

#include "api/ApiDatabase.h"
#include "program/ProgramParser.h"
#include "rustsim/Checker.h"
#include "types/TypeParser.h"

#include <cstdio>

using namespace syrust;
using namespace syrust::api;
using namespace syrust::program;
using namespace syrust::types;

namespace {

struct World {
  TypeArena Arena;
  TraitEnv Traits{Arena};
  ApiDatabase Db;
  std::vector<TemplateInput> Template;

  World() {
    Traits.addDefaultPrimImpls();
    TypeParser Parser(Arena, {"T"});
    auto Ty = [&](const char *S) { return Parser.parse(S); };
    addBuiltinApis(Db, Arena);
    auto Add = [&](const char *Name, std::vector<const Type *> Ins,
                   const Type *Out) {
      ApiSig Sig;
      Sig.Name = Name;
      Sig.Inputs = std::move(Ins);
      Sig.Output = Out;
      Db.add(std::move(Sig));
    };
    Add("Vec::push", {Ty("&mut Vec<T>"), Ty("T")}, Ty("()"));
    Add("Vec::into_raw_parts", {Ty("Vec<T>")},
        Ty("(usize, usize, usize)"));
    // fn test(s: String, v: Vec<String>) - the Figure 2 template.
    Template = {{"s", Ty("String")}, {"v", Ty("Vec<String>")}};
  }

  void compile(const char *Title, const char *Source) {
    std::printf("--- %s\n%s", Title, Source);
    auto Parsed =
        parseProgram(Db, Arena, Template, Source, {"T"});
    if (!Parsed.Ok) {
      std::printf("  parse error: %s\n\n", Parsed.Error.c_str());
      return;
    }
    rustsim::Checker Check(Arena, Traits);
    auto R = Check.check(Parsed.Prog, Db);
    if (R.Success)
      std::printf("=> compiles (as the paper says it should)\n\n");
    else
      std::printf("=> error[line %d]: %s\n\n", R.Diag.Line + 1,
                  R.Diag.Message.c_str());
  }
};

} // namespace

int main() {
  World W;

  W.compile("Figure 1: the well-typed running example",
            "let mut v1 = v;\n"
            "let v2 = &mut v1;\n"
            "Vec::push(v2, s);\n"
            "let v4 : (usize, usize, usize) = "
            "Vec::into_raw_parts(v1);\n");

  W.compile("Section 2: \"if we were to call vr.push(s); again ... the "
            "program will no longer type check\" (s was moved)",
            "let mut v1 = v;\n"
            "let v2 = &mut v1;\n"
            "Vec::push(v2, s);\n"
            "Vec::push(v2, s);\n");

  W.compile("Section 2: \"swapping the last 2 lines ... yields an "
            "ill-typed program\" (vr is removed from the context when vm "
            "is destroyed)",
            "let mut v1 = v;\n"
            "let v2 = &mut v1;\n"
            "let v3 : (usize, usize, usize) = "
            "Vec::into_raw_parts(v1);\n"
            "Vec::push(v2, s);\n");

  W.compile("Section 2: \"the following program attempts to borrow a "
            "second mutable reference vr2. This does not pass the Rust "
            "compiler.\"",
            "let mut v1 = v;\n"
            "let v2 = &mut v1;\n"
            "let v3 = &mut v1;\n"
            "Vec::push(v2, s);\n");

  W.compile("Section 2: \"even if vr2 is an immutable reference, the "
            "program still causes a type error\"",
            "let mut v1 = v;\n"
            "let v2 = &mut v1;\n"
            "let v3 = &v1;\n"
            "Vec::push(v2, s);\n");

  return 0;
}
