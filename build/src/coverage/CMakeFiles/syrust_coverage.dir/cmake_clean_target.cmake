file(REMOVE_RECURSE
  "libsyrust_coverage.a"
)
