# Empty dependencies file for syrust_coverage.
# This may be replaced when dependencies are built.
