file(REMOVE_RECURSE
  "CMakeFiles/syrust_coverage.dir/CoverageMap.cpp.o"
  "CMakeFiles/syrust_coverage.dir/CoverageMap.cpp.o.d"
  "libsyrust_coverage.a"
  "libsyrust_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syrust_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
