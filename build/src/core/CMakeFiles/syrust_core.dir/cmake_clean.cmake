file(REMOVE_RECURSE
  "CMakeFiles/syrust_core.dir/BugMinimizer.cpp.o"
  "CMakeFiles/syrust_core.dir/BugMinimizer.cpp.o.d"
  "CMakeFiles/syrust_core.dir/ResultJson.cpp.o"
  "CMakeFiles/syrust_core.dir/ResultJson.cpp.o.d"
  "CMakeFiles/syrust_core.dir/SyRustDriver.cpp.o"
  "CMakeFiles/syrust_core.dir/SyRustDriver.cpp.o.d"
  "libsyrust_core.a"
  "libsyrust_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syrust_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
