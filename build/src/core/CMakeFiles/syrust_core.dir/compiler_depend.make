# Empty compiler generated dependencies file for syrust_core.
# This may be replaced when dependencies are built.
