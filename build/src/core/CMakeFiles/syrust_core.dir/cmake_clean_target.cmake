file(REMOVE_RECURSE
  "libsyrust_core.a"
)
