# Empty dependencies file for syrust_support.
# This may be replaced when dependencies are built.
