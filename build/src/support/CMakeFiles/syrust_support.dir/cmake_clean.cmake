file(REMOVE_RECURSE
  "CMakeFiles/syrust_support.dir/Json.cpp.o"
  "CMakeFiles/syrust_support.dir/Json.cpp.o.d"
  "CMakeFiles/syrust_support.dir/StringUtils.cpp.o"
  "CMakeFiles/syrust_support.dir/StringUtils.cpp.o.d"
  "libsyrust_support.a"
  "libsyrust_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syrust_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
