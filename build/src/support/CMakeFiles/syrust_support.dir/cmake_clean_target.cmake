file(REMOVE_RECURSE
  "libsyrust_support.a"
)
