# Empty compiler generated dependencies file for syrust_synth.
# This may be replaced when dependencies are built.
