file(REMOVE_RECURSE
  "CMakeFiles/syrust_synth.dir/Encoding.cpp.o"
  "CMakeFiles/syrust_synth.dir/Encoding.cpp.o.d"
  "CMakeFiles/syrust_synth.dir/Synthesizer.cpp.o"
  "CMakeFiles/syrust_synth.dir/Synthesizer.cpp.o.d"
  "libsyrust_synth.a"
  "libsyrust_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syrust_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
