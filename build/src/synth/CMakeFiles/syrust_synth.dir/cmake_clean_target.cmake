file(REMOVE_RECURSE
  "libsyrust_synth.a"
)
