# Empty compiler generated dependencies file for syrust_rustsim.
# This may be replaced when dependencies are built.
