file(REMOVE_RECURSE
  "CMakeFiles/syrust_rustsim.dir/Checker.cpp.o"
  "CMakeFiles/syrust_rustsim.dir/Checker.cpp.o.d"
  "CMakeFiles/syrust_rustsim.dir/DiagnosticJson.cpp.o"
  "CMakeFiles/syrust_rustsim.dir/DiagnosticJson.cpp.o.d"
  "libsyrust_rustsim.a"
  "libsyrust_rustsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syrust_rustsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
