file(REMOVE_RECURSE
  "libsyrust_rustsim.a"
)
