# Empty compiler generated dependencies file for syrust_sat.
# This may be replaced when dependencies are built.
