file(REMOVE_RECURSE
  "CMakeFiles/syrust_sat.dir/Dimacs.cpp.o"
  "CMakeFiles/syrust_sat.dir/Dimacs.cpp.o.d"
  "CMakeFiles/syrust_sat.dir/Solver.cpp.o"
  "CMakeFiles/syrust_sat.dir/Solver.cpp.o.d"
  "libsyrust_sat.a"
  "libsyrust_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syrust_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
