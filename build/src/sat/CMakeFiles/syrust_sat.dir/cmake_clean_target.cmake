file(REMOVE_RECURSE
  "libsyrust_sat.a"
)
