# Empty dependencies file for syrust_api.
# This may be replaced when dependencies are built.
