file(REMOVE_RECURSE
  "CMakeFiles/syrust_api.dir/ApiDatabase.cpp.o"
  "CMakeFiles/syrust_api.dir/ApiDatabase.cpp.o.d"
  "libsyrust_api.a"
  "libsyrust_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syrust_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
