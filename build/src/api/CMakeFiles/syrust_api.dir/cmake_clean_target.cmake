file(REMOVE_RECURSE
  "libsyrust_api.a"
)
