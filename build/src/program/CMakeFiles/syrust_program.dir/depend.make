# Empty dependencies file for syrust_program.
# This may be replaced when dependencies are built.
