file(REMOVE_RECURSE
  "libsyrust_program.a"
)
