file(REMOVE_RECURSE
  "CMakeFiles/syrust_program.dir/Program.cpp.o"
  "CMakeFiles/syrust_program.dir/Program.cpp.o.d"
  "CMakeFiles/syrust_program.dir/ProgramParser.cpp.o"
  "CMakeFiles/syrust_program.dir/ProgramParser.cpp.o.d"
  "libsyrust_program.a"
  "libsyrust_program.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syrust_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
