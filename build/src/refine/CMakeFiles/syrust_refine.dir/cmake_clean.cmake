file(REMOVE_RECURSE
  "CMakeFiles/syrust_refine.dir/RefinementEngine.cpp.o"
  "CMakeFiles/syrust_refine.dir/RefinementEngine.cpp.o.d"
  "libsyrust_refine.a"
  "libsyrust_refine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syrust_refine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
