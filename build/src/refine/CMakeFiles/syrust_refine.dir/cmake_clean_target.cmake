file(REMOVE_RECURSE
  "libsyrust_refine.a"
)
