# Empty compiler generated dependencies file for syrust_refine.
# This may be replaced when dependencies are built.
