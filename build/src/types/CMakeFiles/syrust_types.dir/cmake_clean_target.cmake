file(REMOVE_RECURSE
  "libsyrust_types.a"
)
