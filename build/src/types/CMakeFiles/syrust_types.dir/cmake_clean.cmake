file(REMOVE_RECURSE
  "CMakeFiles/syrust_types.dir/Subtyping.cpp.o"
  "CMakeFiles/syrust_types.dir/Subtyping.cpp.o.d"
  "CMakeFiles/syrust_types.dir/TraitEnv.cpp.o"
  "CMakeFiles/syrust_types.dir/TraitEnv.cpp.o.d"
  "CMakeFiles/syrust_types.dir/Type.cpp.o"
  "CMakeFiles/syrust_types.dir/Type.cpp.o.d"
  "CMakeFiles/syrust_types.dir/TypeParser.cpp.o"
  "CMakeFiles/syrust_types.dir/TypeParser.cpp.o.d"
  "libsyrust_types.a"
  "libsyrust_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syrust_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
