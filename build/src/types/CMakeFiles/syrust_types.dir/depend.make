# Empty dependencies file for syrust_types.
# This may be replaced when dependencies are built.
