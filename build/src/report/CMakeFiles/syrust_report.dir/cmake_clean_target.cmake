file(REMOVE_RECURSE
  "libsyrust_report.a"
)
