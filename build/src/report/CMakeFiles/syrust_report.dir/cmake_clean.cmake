file(REMOVE_RECURSE
  "CMakeFiles/syrust_report.dir/Table.cpp.o"
  "CMakeFiles/syrust_report.dir/Table.cpp.o.d"
  "libsyrust_report.a"
  "libsyrust_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syrust_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
