# Empty dependencies file for syrust_report.
# This may be replaced when dependencies are built.
