# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("sat")
subdirs("types")
subdirs("api")
subdirs("program")
subdirs("rustsim")
subdirs("miri")
subdirs("coverage")
subdirs("crates")
subdirs("synth")
subdirs("refine")
subdirs("core")
subdirs("report")
