file(REMOVE_RECURSE
  "CMakeFiles/syrust_miri.dir/Heap.cpp.o"
  "CMakeFiles/syrust_miri.dir/Heap.cpp.o.d"
  "CMakeFiles/syrust_miri.dir/Interpreter.cpp.o"
  "CMakeFiles/syrust_miri.dir/Interpreter.cpp.o.d"
  "libsyrust_miri.a"
  "libsyrust_miri.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syrust_miri.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
