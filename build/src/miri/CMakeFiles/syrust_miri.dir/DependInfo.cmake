
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/miri/Heap.cpp" "src/miri/CMakeFiles/syrust_miri.dir/Heap.cpp.o" "gcc" "src/miri/CMakeFiles/syrust_miri.dir/Heap.cpp.o.d"
  "/root/repo/src/miri/Interpreter.cpp" "src/miri/CMakeFiles/syrust_miri.dir/Interpreter.cpp.o" "gcc" "src/miri/CMakeFiles/syrust_miri.dir/Interpreter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/program/CMakeFiles/syrust_program.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/syrust_types.dir/DependInfo.cmake"
  "/root/repo/build/src/coverage/CMakeFiles/syrust_coverage.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/syrust_support.dir/DependInfo.cmake"
  "/root/repo/build/src/api/CMakeFiles/syrust_api.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
