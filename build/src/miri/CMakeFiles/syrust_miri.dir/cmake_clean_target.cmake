file(REMOVE_RECURSE
  "libsyrust_miri.a"
)
