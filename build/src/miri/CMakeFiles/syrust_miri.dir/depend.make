# Empty dependencies file for syrust_miri.
# This may be replaced when dependencies are built.
