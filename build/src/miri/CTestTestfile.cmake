# CMake generated Testfile for 
# Source directory: /root/repo/src/miri
# Build directory: /root/repo/build/src/miri
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
