
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crates/CrateBuilder.cpp" "src/crates/CMakeFiles/syrust_crates.dir/CrateBuilder.cpp.o" "gcc" "src/crates/CMakeFiles/syrust_crates.dir/CrateBuilder.cpp.o.d"
  "/root/repo/src/crates/CrateRegistry.cpp" "src/crates/CMakeFiles/syrust_crates.dir/CrateRegistry.cpp.o" "gcc" "src/crates/CMakeFiles/syrust_crates.dir/CrateRegistry.cpp.o.d"
  "/root/repo/src/crates/libs/Base16.cpp" "src/crates/CMakeFiles/syrust_crates.dir/libs/Base16.cpp.o" "gcc" "src/crates/CMakeFiles/syrust_crates.dir/libs/Base16.cpp.o.d"
  "/root/repo/src/crates/libs/Bitvec.cpp" "src/crates/CMakeFiles/syrust_crates.dir/libs/Bitvec.cpp.o" "gcc" "src/crates/CMakeFiles/syrust_crates.dir/libs/Bitvec.cpp.o.d"
  "/root/repo/src/crates/libs/Bstr.cpp" "src/crates/CMakeFiles/syrust_crates.dir/libs/Bstr.cpp.o" "gcc" "src/crates/CMakeFiles/syrust_crates.dir/libs/Bstr.cpp.o.d"
  "/root/repo/src/crates/libs/Bytemuck.cpp" "src/crates/CMakeFiles/syrust_crates.dir/libs/Bytemuck.cpp.o" "gcc" "src/crates/CMakeFiles/syrust_crates.dir/libs/Bytemuck.cpp.o.d"
  "/root/repo/src/crates/libs/Bytes.cpp" "src/crates/CMakeFiles/syrust_crates.dir/libs/Bytes.cpp.o" "gcc" "src/crates/CMakeFiles/syrust_crates.dir/libs/Bytes.cpp.o.d"
  "/root/repo/src/crates/libs/CborCodec.cpp" "src/crates/CMakeFiles/syrust_crates.dir/libs/CborCodec.cpp.o" "gcc" "src/crates/CMakeFiles/syrust_crates.dir/libs/CborCodec.cpp.o.d"
  "/root/repo/src/crates/libs/Crossbeam.cpp" "src/crates/CMakeFiles/syrust_crates.dir/libs/Crossbeam.cpp.o" "gcc" "src/crates/CMakeFiles/syrust_crates.dir/libs/Crossbeam.cpp.o.d"
  "/root/repo/src/crates/libs/CrossbeamDeque.cpp" "src/crates/CMakeFiles/syrust_crates.dir/libs/CrossbeamDeque.cpp.o" "gcc" "src/crates/CMakeFiles/syrust_crates.dir/libs/CrossbeamDeque.cpp.o.d"
  "/root/repo/src/crates/libs/CrossbeamQueue.cpp" "src/crates/CMakeFiles/syrust_crates.dir/libs/CrossbeamQueue.cpp.o" "gcc" "src/crates/CMakeFiles/syrust_crates.dir/libs/CrossbeamQueue.cpp.o.d"
  "/root/repo/src/crates/libs/CrossbeamUtils.cpp" "src/crates/CMakeFiles/syrust_crates.dir/libs/CrossbeamUtils.cpp.o" "gcc" "src/crates/CMakeFiles/syrust_crates.dir/libs/CrossbeamUtils.cpp.o.d"
  "/root/repo/src/crates/libs/CsvCore.cpp" "src/crates/CMakeFiles/syrust_crates.dir/libs/CsvCore.cpp.o" "gcc" "src/crates/CMakeFiles/syrust_crates.dir/libs/CsvCore.cpp.o.d"
  "/root/repo/src/crates/libs/Dashmap.cpp" "src/crates/CMakeFiles/syrust_crates.dir/libs/Dashmap.cpp.o" "gcc" "src/crates/CMakeFiles/syrust_crates.dir/libs/Dashmap.cpp.o.d"
  "/root/repo/src/crates/libs/DataEncoding.cpp" "src/crates/CMakeFiles/syrust_crates.dir/libs/DataEncoding.cpp.o" "gcc" "src/crates/CMakeFiles/syrust_crates.dir/libs/DataEncoding.cpp.o.d"
  "/root/repo/src/crates/libs/EncodeUnicode.cpp" "src/crates/CMakeFiles/syrust_crates.dir/libs/EncodeUnicode.cpp.o" "gcc" "src/crates/CMakeFiles/syrust_crates.dir/libs/EncodeUnicode.cpp.o.d"
  "/root/repo/src/crates/libs/EncodingRs.cpp" "src/crates/CMakeFiles/syrust_crates.dir/libs/EncodingRs.cpp.o" "gcc" "src/crates/CMakeFiles/syrust_crates.dir/libs/EncodingRs.cpp.o.d"
  "/root/repo/src/crates/libs/Excluded.cpp" "src/crates/CMakeFiles/syrust_crates.dir/libs/Excluded.cpp.o" "gcc" "src/crates/CMakeFiles/syrust_crates.dir/libs/Excluded.cpp.o.d"
  "/root/repo/src/crates/libs/GenericArray.cpp" "src/crates/CMakeFiles/syrust_crates.dir/libs/GenericArray.cpp.o" "gcc" "src/crates/CMakeFiles/syrust_crates.dir/libs/GenericArray.cpp.o.d"
  "/root/repo/src/crates/libs/Hashbrown.cpp" "src/crates/CMakeFiles/syrust_crates.dir/libs/Hashbrown.cpp.o" "gcc" "src/crates/CMakeFiles/syrust_crates.dir/libs/Hashbrown.cpp.o.d"
  "/root/repo/src/crates/libs/Hcid.cpp" "src/crates/CMakeFiles/syrust_crates.dir/libs/Hcid.cpp.o" "gcc" "src/crates/CMakeFiles/syrust_crates.dir/libs/Hcid.cpp.o.d"
  "/root/repo/src/crates/libs/ImRc.cpp" "src/crates/CMakeFiles/syrust_crates.dir/libs/ImRc.cpp.o" "gcc" "src/crates/CMakeFiles/syrust_crates.dir/libs/ImRc.cpp.o.d"
  "/root/repo/src/crates/libs/Ndarray.cpp" "src/crates/CMakeFiles/syrust_crates.dir/libs/Ndarray.cpp.o" "gcc" "src/crates/CMakeFiles/syrust_crates.dir/libs/Ndarray.cpp.o.d"
  "/root/repo/src/crates/libs/NumRational.cpp" "src/crates/CMakeFiles/syrust_crates.dir/libs/NumRational.cpp.o" "gcc" "src/crates/CMakeFiles/syrust_crates.dir/libs/NumRational.cpp.o.d"
  "/root/repo/src/crates/libs/Petgraph.cpp" "src/crates/CMakeFiles/syrust_crates.dir/libs/Petgraph.cpp.o" "gcc" "src/crates/CMakeFiles/syrust_crates.dir/libs/Petgraph.cpp.o.d"
  "/root/repo/src/crates/libs/RmpSerde.cpp" "src/crates/CMakeFiles/syrust_crates.dir/libs/RmpSerde.cpp.o" "gcc" "src/crates/CMakeFiles/syrust_crates.dir/libs/RmpSerde.cpp.o.d"
  "/root/repo/src/crates/libs/Slab.cpp" "src/crates/CMakeFiles/syrust_crates.dir/libs/Slab.cpp.o" "gcc" "src/crates/CMakeFiles/syrust_crates.dir/libs/Slab.cpp.o.d"
  "/root/repo/src/crates/libs/Smallvec.cpp" "src/crates/CMakeFiles/syrust_crates.dir/libs/Smallvec.cpp.o" "gcc" "src/crates/CMakeFiles/syrust_crates.dir/libs/Smallvec.cpp.o.d"
  "/root/repo/src/crates/libs/Sval.cpp" "src/crates/CMakeFiles/syrust_crates.dir/libs/Sval.cpp.o" "gcc" "src/crates/CMakeFiles/syrust_crates.dir/libs/Sval.cpp.o.d"
  "/root/repo/src/crates/libs/Urlencoding.cpp" "src/crates/CMakeFiles/syrust_crates.dir/libs/Urlencoding.cpp.o" "gcc" "src/crates/CMakeFiles/syrust_crates.dir/libs/Urlencoding.cpp.o.d"
  "/root/repo/src/crates/libs/Utf8Width.cpp" "src/crates/CMakeFiles/syrust_crates.dir/libs/Utf8Width.cpp.o" "gcc" "src/crates/CMakeFiles/syrust_crates.dir/libs/Utf8Width.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/api/CMakeFiles/syrust_api.dir/DependInfo.cmake"
  "/root/repo/build/src/miri/CMakeFiles/syrust_miri.dir/DependInfo.cmake"
  "/root/repo/build/src/program/CMakeFiles/syrust_program.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/syrust_types.dir/DependInfo.cmake"
  "/root/repo/build/src/coverage/CMakeFiles/syrust_coverage.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/syrust_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
