# Empty compiler generated dependencies file for syrust_crates.
# This may be replaced when dependencies are built.
