file(REMOVE_RECURSE
  "libsyrust_crates.a"
)
