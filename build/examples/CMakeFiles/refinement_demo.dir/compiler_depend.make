# Empty compiler generated dependencies file for refinement_demo.
# This may be replaced when dependencies are built.
