file(REMOVE_RECURSE
  "CMakeFiles/refinement_demo.dir/refinement_demo.cpp.o"
  "CMakeFiles/refinement_demo.dir/refinement_demo.cpp.o.d"
  "refinement_demo"
  "refinement_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refinement_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
