
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/custom_library.cpp" "examples/CMakeFiles/custom_library.dir/custom_library.cpp.o" "gcc" "examples/CMakeFiles/custom_library.dir/custom_library.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/syrust_core.dir/DependInfo.cmake"
  "/root/repo/build/src/crates/CMakeFiles/syrust_crates.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/syrust_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/syrust_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/refine/CMakeFiles/syrust_refine.dir/DependInfo.cmake"
  "/root/repo/build/src/rustsim/CMakeFiles/syrust_rustsim.dir/DependInfo.cmake"
  "/root/repo/build/src/miri/CMakeFiles/syrust_miri.dir/DependInfo.cmake"
  "/root/repo/build/src/program/CMakeFiles/syrust_program.dir/DependInfo.cmake"
  "/root/repo/build/src/api/CMakeFiles/syrust_api.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/syrust_types.dir/DependInfo.cmake"
  "/root/repo/build/src/coverage/CMakeFiles/syrust_coverage.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/syrust_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
