# Empty dependencies file for bughunt_bitvec.
# This may be replaced when dependencies are built.
