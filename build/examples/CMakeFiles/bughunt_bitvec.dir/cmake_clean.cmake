file(REMOVE_RECURSE
  "CMakeFiles/bughunt_bitvec.dir/bughunt_bitvec.cpp.o"
  "CMakeFiles/bughunt_bitvec.dir/bughunt_bitvec.cpp.o.d"
  "bughunt_bitvec"
  "bughunt_bitvec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bughunt_bitvec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
