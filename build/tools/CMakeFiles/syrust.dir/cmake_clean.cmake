file(REMOVE_RECURSE
  "CMakeFiles/syrust.dir/syrust.cpp.o"
  "CMakeFiles/syrust.dir/syrust.cpp.o.d"
  "syrust"
  "syrust.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syrust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
