# Empty compiler generated dependencies file for syrust.
# This may be replaced when dependencies are built.
