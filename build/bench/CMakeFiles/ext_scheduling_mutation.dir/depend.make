# Empty dependencies file for ext_scheduling_mutation.
# This may be replaced when dependencies are built.
