file(REMOVE_RECURSE
  "CMakeFiles/ext_scheduling_mutation.dir/ext_scheduling_mutation.cpp.o"
  "CMakeFiles/ext_scheduling_mutation.dir/ext_scheduling_mutation.cpp.o.d"
  "ext_scheduling_mutation"
  "ext_scheduling_mutation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_scheduling_mutation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
