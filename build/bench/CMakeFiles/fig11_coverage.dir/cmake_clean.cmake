file(REMOVE_RECURSE
  "CMakeFiles/fig11_coverage.dir/fig11_coverage.cpp.o"
  "CMakeFiles/fig11_coverage.dir/fig11_coverage.cpp.o.d"
  "fig11_coverage"
  "fig11_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
