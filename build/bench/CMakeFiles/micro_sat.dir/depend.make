# Empty dependencies file for micro_sat.
# This may be replaced when dependencies are built.
