file(REMOVE_RECURSE
  "CMakeFiles/fig10_rq3_eager_ablation.dir/fig10_rq3_eager_ablation.cpp.o"
  "CMakeFiles/fig10_rq3_eager_ablation.dir/fig10_rq3_eager_ablation.cpp.o.d"
  "fig10_rq3_eager_ablation"
  "fig10_rq3_eager_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_rq3_eager_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
