# Empty dependencies file for fig10_rq3_eager_ablation.
# This may be replaced when dependencies are built.
