file(REMOVE_RECURSE
  "CMakeFiles/fig7_bugs.dir/fig7_bugs.cpp.o"
  "CMakeFiles/fig7_bugs.dir/fig7_bugs.cpp.o.d"
  "fig7_bugs"
  "fig7_bugs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_bugs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
