# Empty dependencies file for fig7_bugs.
# This may be replaced when dependencies are built.
