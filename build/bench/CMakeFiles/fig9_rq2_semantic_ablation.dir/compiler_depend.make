# Empty compiler generated dependencies file for fig9_rq2_semantic_ablation.
# This may be replaced when dependencies are built.
