# Empty dependencies file for fig12_library_table.
# This may be replaced when dependencies are built.
