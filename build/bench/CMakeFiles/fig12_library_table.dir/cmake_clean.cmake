file(REMOVE_RECURSE
  "CMakeFiles/fig12_library_table.dir/fig12_library_table.cpp.o"
  "CMakeFiles/fig12_library_table.dir/fig12_library_table.cpp.o.d"
  "fig12_library_table"
  "fig12_library_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_library_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
