# Empty compiler generated dependencies file for type_property_test.
# This may be replaced when dependencies are built.
