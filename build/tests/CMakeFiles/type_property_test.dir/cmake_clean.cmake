file(REMOVE_RECURSE
  "CMakeFiles/type_property_test.dir/TypePropertyTest.cpp.o"
  "CMakeFiles/type_property_test.dir/TypePropertyTest.cpp.o.d"
  "type_property_test"
  "type_property_test.pdb"
  "type_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/type_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
