# Empty dependencies file for api_program_test.
# This may be replaced when dependencies are built.
