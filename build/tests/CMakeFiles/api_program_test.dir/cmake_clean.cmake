file(REMOVE_RECURSE
  "CMakeFiles/api_program_test.dir/ApiProgramTest.cpp.o"
  "CMakeFiles/api_program_test.dir/ApiProgramTest.cpp.o.d"
  "api_program_test"
  "api_program_test.pdb"
  "api_program_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/api_program_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
