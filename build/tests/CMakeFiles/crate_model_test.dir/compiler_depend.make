# Empty compiler generated dependencies file for crate_model_test.
# This may be replaced when dependencies are built.
