file(REMOVE_RECURSE
  "CMakeFiles/crate_model_test.dir/CrateModelTest.cpp.o"
  "CMakeFiles/crate_model_test.dir/CrateModelTest.cpp.o.d"
  "crate_model_test"
  "crate_model_test.pdb"
  "crate_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crate_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
