
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/CheckerTest.cpp" "tests/CMakeFiles/checker_test.dir/CheckerTest.cpp.o" "gcc" "tests/CMakeFiles/checker_test.dir/CheckerTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rustsim/CMakeFiles/syrust_rustsim.dir/DependInfo.cmake"
  "/root/repo/build/src/program/CMakeFiles/syrust_program.dir/DependInfo.cmake"
  "/root/repo/build/src/api/CMakeFiles/syrust_api.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/syrust_types.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/syrust_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
