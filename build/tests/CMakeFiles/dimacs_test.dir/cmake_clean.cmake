file(REMOVE_RECURSE
  "CMakeFiles/dimacs_test.dir/DimacsTest.cpp.o"
  "CMakeFiles/dimacs_test.dir/DimacsTest.cpp.o.d"
  "dimacs_test"
  "dimacs_test.pdb"
  "dimacs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimacs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
