# Empty compiler generated dependencies file for miri_test.
# This may be replaced when dependencies are built.
