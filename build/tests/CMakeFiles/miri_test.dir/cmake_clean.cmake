file(REMOVE_RECURSE
  "CMakeFiles/miri_test.dir/MiriTest.cpp.o"
  "CMakeFiles/miri_test.dir/MiriTest.cpp.o.d"
  "miri_test"
  "miri_test.pdb"
  "miri_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miri_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
