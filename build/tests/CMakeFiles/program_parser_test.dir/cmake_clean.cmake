file(REMOVE_RECURSE
  "CMakeFiles/program_parser_test.dir/ProgramParserTest.cpp.o"
  "CMakeFiles/program_parser_test.dir/ProgramParserTest.cpp.o.d"
  "program_parser_test"
  "program_parser_test.pdb"
  "program_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/program_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
