file(REMOVE_RECURSE
  "CMakeFiles/checker_fuzz_test.dir/CheckerFuzzTest.cpp.o"
  "CMakeFiles/checker_fuzz_test.dir/CheckerFuzzTest.cpp.o.d"
  "checker_fuzz_test"
  "checker_fuzz_test.pdb"
  "checker_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checker_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
