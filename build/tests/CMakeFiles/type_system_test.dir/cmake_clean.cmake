file(REMOVE_RECURSE
  "CMakeFiles/type_system_test.dir/TypeSystemTest.cpp.o"
  "CMakeFiles/type_system_test.dir/TypeSystemTest.cpp.o.d"
  "type_system_test"
  "type_system_test.pdb"
  "type_system_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/type_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
