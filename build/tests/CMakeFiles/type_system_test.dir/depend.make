# Empty dependencies file for type_system_test.
# This may be replaced when dependencies are built.
