# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sat_solver_test[1]_include.cmake")
include("/root/repo/build/tests/dimacs_test[1]_include.cmake")
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/type_system_test[1]_include.cmake")
include("/root/repo/build/tests/type_property_test[1]_include.cmake")
include("/root/repo/build/tests/checker_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/api_program_test[1]_include.cmake")
include("/root/repo/build/tests/checker_test[1]_include.cmake")
include("/root/repo/build/tests/miri_test[1]_include.cmake")
include("/root/repo/build/tests/synth_test[1]_include.cmake")
include("/root/repo/build/tests/encoding_test[1]_include.cmake")
include("/root/repo/build/tests/refine_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_test[1]_include.cmake")
include("/root/repo/build/tests/crate_model_test[1]_include.cmake")
include("/root/repo/build/tests/driver_test[1]_include.cmake")
include("/root/repo/build/tests/integration_property_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/json_test[1]_include.cmake")
include("/root/repo/build/tests/program_parser_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
