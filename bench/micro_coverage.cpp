//===--- micro_coverage.cpp - API-pair coverage microbenches --------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// The observability tax of api_coverage, measured in isolation: how
/// long the one-off dependency-graph freeze takes per crate, the raw
/// edge-marking rate, and - the number CI watches - the per-test
/// overhead of marking on the micro_synth full-pipeline workload
/// (Arg 0 = synthesis alone, Arg 1 = synthesis + marking; the delta
/// must stay under a few percent for coverage to be always-on).
///
//===----------------------------------------------------------------------===//

#include "api/DependencyGraph.h"
#include "coverage/ApiPairCoverage.h"
#include "crates/CrateRegistry.h"
#include "synth/Synthesizer.h"
#include "types/CompatCache.h"

#include "MicroMain.h"

#include <benchmark/benchmark.h>

using namespace syrust;
using namespace syrust::api;
using namespace syrust::coverage;
using namespace syrust::crates;
using namespace syrust::synth;

namespace {

const char *const GraphCrates[] = {"slab", "smallvec", "bitvec"};

void BM_GraphBuild(benchmark::State &State) {
  // The per-crate freeze cost (paid once per CrateAnalysis; campaign
  // workers share the result copy-on-write).
  auto Inst =
      findCrate(GraphCrates[State.range(0)])->instantiate();
  size_t Edges = 0;
  for (auto _ : State) {
    types::CompatCache Cache;
    DependencyGraph G = buildDependencyGraph(Inst->Db, Inst->Arena, Cache);
    Edges = G.numEdges();
    benchmark::DoNotOptimize(Edges);
  }
  State.counters["edges"] = static_cast<double>(Edges);
}
BENCHMARK(BM_GraphBuild)->ArgName("crate")->Arg(0)->Arg(1)->Arg(2);

void BM_MarkProgram(benchmark::State &State) {
  // Raw marking rate over a pre-enumerated program batch.
  auto Inst = findCrate("slab")->instantiate();
  types::CompatCache Cache;
  DependencyGraph G = buildDependencyGraph(Inst->Db, Inst->Arena, Cache);
  Synthesizer Synth(Inst->Arena, Inst->Traits, Inst->Db, Inst->Inputs, 4,
                    SynthOptions{});
  std::vector<program::Program> Programs;
  while (Programs.size() < 200) {
    auto P = Synth.next();
    if (!P)
      break;
    Programs.push_back(*P);
  }
  for (auto _ : State) {
    ApiPairCoverage Cov(G);
    uint64_t Edges = 0;
    for (const auto &P : Programs)
      Edges += Cov.markProgram(P, Inst->Db).NewEdges;
    benchmark::DoNotOptimize(Edges);
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(Programs.size()));
}
BENCHMARK(BM_MarkProgram);

void BM_FullPipelinePerTest(benchmark::State &State) {
  // micro_synth's amortized synthesize+decode step, with edge marking
  // bolted on when Arg is 1 - the A/B CI compares.
  bool Mark = State.range(0) != 0;
  auto Inst = findCrate("smallvec")->instantiate();
  types::CompatCache Cache;
  DependencyGraph G = buildDependencyGraph(Inst->Db, Inst->Arena, Cache);
  ApiPairCoverage Cov(G);
  Synthesizer Synth(Inst->Arena, Inst->Traits, Inst->Db, Inst->Inputs,
                    Inst->MaxLen, SynthOptions{});
  int64_t Produced = 0;
  for (auto _ : State) {
    auto P = Synth.next();
    if (!P.has_value()) {
      State.SkipWithError("space exhausted");
      break;
    }
    benchmark::DoNotOptimize(P->hash());
    if (Mark)
      benchmark::DoNotOptimize(Cov.markProgram(*P, Inst->Db).NewEdges);
    ++Produced;
  }
  State.SetItemsProcessed(Produced);
}
BENCHMARK(BM_FullPipelinePerTest)->ArgName("mark")->Arg(0)->Arg(1);

} // namespace

SYRUST_BENCHMARK_MAIN("coverage")
