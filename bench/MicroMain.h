//===--- MicroMain.h - JSON-emitting main for the microbenches -*- C++ -*-===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drop-in replacement for BENCHMARK_MAIN() that additionally writes the
/// run's results to `BENCH_<name>.json` (google-benchmark's JSON format)
/// in the working directory, so CI and scripts get machine-readable
/// numbers without remembering reporter flags. Any explicit
/// --benchmark_out on the command line wins over the default.
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_BENCH_MICROMAIN_H
#define SYRUST_BENCH_MICROMAIN_H

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

namespace syrust::bench {

/// BENCHMARK_MAIN()'s body with a default `--benchmark_out=BENCH_<name>
/// .json --benchmark_out_format=json` appended unless the caller passed
/// their own --benchmark_out.
inline int microMain(const char *Name, int Argc, char **Argv) {
  char Arg0Default[] = "benchmark";
  char *ArgsDefault = Arg0Default;
  if (!Argv) {
    Argc = 1;
    Argv = &ArgsDefault;
  }
  std::vector<char *> Args(Argv, Argv + Argc);
  bool HasOut = false;
  for (int I = 1; I < Argc; ++I)
    if (!std::strncmp(Argv[I], "--benchmark_out=", 16))
      HasOut = true;
  std::string OutFlag =
      std::string("--benchmark_out=BENCH_") + Name + ".json";
  std::string FmtFlag = "--benchmark_out_format=json";
  if (!HasOut) {
    Args.push_back(OutFlag.data());
    Args.push_back(FmtFlag.data());
  }
  int N = static_cast<int>(Args.size());
  ::benchmark::Initialize(&N, Args.data());
  if (::benchmark::ReportUnrecognizedArguments(N, Args.data()))
    return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}

} // namespace syrust::bench

/// Use instead of BENCHMARK_MAIN(); \p NAME becomes BENCH_<NAME>.json.
#define SYRUST_BENCHMARK_MAIN(NAME)                                      \
  int main(int argc, char **argv) {                                      \
    return syrust::bench::microMain(NAME, argc, argv);                   \
  }

#endif // SYRUST_BENCH_MICROMAIN_H
