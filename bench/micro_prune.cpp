//===--- micro_prune.cpp - Graph-guided encoding pruning A/B bench --------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// A/B benchmark for graph-guided encoding pruning, in two parts.
///
/// Part 1 (the headline number) is a probe-dominated stress model: many
/// producers minting distinct concrete types and single-input consumers
/// each accepting exactly one of them, so candidate enumeration asks a
/// large number of per-slot probes of which most FAIL (no clause work
/// follows, the probe itself is the cost) and none are joint probes. A
/// handful of consumers take a type nothing produces, exercising the
/// dead-API pass. Both sides share one pre-warmed CompatCache (the graph
/// build populates it with exactly the encoder's renamed probe keys) and
/// the same frozen graph; the only difference is SynthOptions::GraphPrune,
/// i.e. whether a probe is an O(1) bitset test or a memo-table lookup.
/// The rebuild-the-world refinement path (incremental refinement off,
/// interleaved lengths, a no-op database notification per round) forces
/// every round to rebuild all live encodings and re-ask the whole probe
/// workload.
///
/// Part 2 runs real library models through core::Session with the
/// --no-graph-prune escape hatch as the off side. Real-model probe
/// volume is modest, so no speedup is claimed here; this part verifies
/// end-to-end stream identity (pruning must change throughput, never
/// results) and reports production probe-avoidance rates.
///
/// Writes BENCH_prune.json. Scale part 2 with SYRUST_BUDGET (simulated
/// seconds per run, default 120) and SYRUST_SEEDS (default 3).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "api/DependencyGraph.h"
#include "core/Session.h"
#include "report/Table.h"
#include "support/StringUtils.h"
#include "synth/Synthesizer.h"
#include "types/CompatCache.h"
#include "types/TypeParser.h"

#include <cinttypes>
#include <string>
#include <vector>

using namespace syrust;
using namespace syrust::bench;
using namespace syrust::core;
using namespace syrust::report;
using namespace syrust::synth;

namespace {

// Stress-model shape: kProducers distinct concrete output types, one
// single-slot consumer per producer (so all but one probe per consumer
// slot fails), kDeadApis consumers of a type nothing mints (dead sites
// on every line), and kRounds forced full rebuilds. Probe volume per
// rebuild grows with lines * APIs * values-in-scope; the constants below
// push it into the millions while the emitted formulas stay small.
constexpr int kProducers = 220;
constexpr int kConsumers = 220;
constexpr int kDeadApis = 20;
constexpr int kRounds = 10;
constexpr int kPerRound = 6;
constexpr int kMaxLines = 4;

struct StressResult {
  double BuildSeconds = 0;
  uint64_t Emitted = 0;
  uint64_t Rebuilds = 0;
  std::vector<uint64_t> Hashes;
  PruneStats Prune;
};

StressResult runStress(bool GraphPrune, types::TypeArena &Arena,
                       const types::TraitEnv &Traits, api::ApiDatabase &Db,
                       const api::DependencyGraph &Graph,
                       types::CompatCache &Cache,
                       const std::vector<program::TemplateInput> &Inputs) {
  SynthOptions Opts;
  // Rebuild-the-world: every notifyDatabaseChanged() tears down and
  // reconstructs all live encodings, re-asking the full probe workload.
  Opts.IncrementalRefinement = false;
  Opts.InterleaveLengths = true;
  Opts.Compat = &Cache;
  Opts.Graph = &Graph;
  Opts.GraphPrune = GraphPrune;
  Synthesizer Synth(Arena, Traits, Db, Inputs, kMaxLines, Opts);

  StressResult R;
  for (int Round = 0; Round < kRounds; ++Round) {
    for (int K = 0; K < kPerRound; ++K) {
      auto P = Synth.next();
      if (!P.has_value())
        break;
      R.Hashes.push_back(P->hash());
    }
    // No database change: the notification alone forces the
    // non-incremental path to rebuild every live length.
    Synth.notifyDatabaseChanged();
  }
  R.BuildSeconds = Synth.stats().BuildSeconds;
  R.Emitted = Synth.stats().Emitted;
  R.Rebuilds = Synth.stats().Rebuilds;
  R.Prune.GraphProbes = Synth.stats().PruneGraphProbes;
  R.Prune.FallbackProbes = Synth.stats().PruneFallbackProbes;
  R.Prune.DeadSites = Synth.stats().PruneDeadSites;
  R.Prune.VarsAvoided = Synth.stats().PruneVarsAvoided;
  R.Prune.ClausesAvoided = Synth.stats().PruneClausesAvoided;
  return R;
}

double avoidancePercent(const PruneStats &P) {
  uint64_t Total = P.GraphProbes + P.FallbackProbes;
  return Total > 0 ? 100.0 * static_cast<double>(P.GraphProbes) /
                         static_cast<double>(Total)
                   : 0.0;
}

} // namespace

int main() {
  Session S;
  double Budget = envBudget("SYRUST_BUDGET", 120.0);
  int Seeds = static_cast<int>(envBudget("SYRUST_SEEDS", 3));
  banner("micro_prune",
         "graph-guided encoding pruning: graph on vs --no-graph-prune");

  BenchJson J("prune");
  bool StreamsIdentical = true;

  // --- Part 1: probe-dominated stress (headline). -----------------------
  std::printf("probe-dominated rebuild stress: %d producers, %d consumers "
              "(+%d dead), %d rounds, %d lines\n\n",
              kProducers, kConsumers, kDeadApis, kRounds, kMaxLines);
  types::TypeArena Arena;
  types::TypeParser Parser(Arena, {"T"});
  types::TraitEnv Traits(Arena);
  api::ApiDatabase Db;
  auto Add = [&](const std::string &Name, std::vector<std::string> Ins,
                 const std::string &Out) {
    api::ApiSig Sig;
    Sig.Name = Name;
    for (const auto &I : Ins)
      Sig.Inputs.push_back(Parser.parse(I));
    Sig.Output = Parser.parse(Out);
    Db.add(std::move(Sig));
  };
  // Producers mint distinct concrete types from a Copy seed; consumer i
  // accepts only producer i's type, so the other kProducers-1 probes on
  // its slot fail without generating any clause.
  for (int I = 0; I < kProducers; ++I)
    Add("mk" + std::to_string(I), {"usize"},
        "Item" + std::to_string(I) + "<usize>");
  for (int I = 0; I < kConsumers; ++I)
    Add("use" + std::to_string(I), {"Item" + std::to_string(I) + "<usize>"},
        "usize");
  for (int I = 0; I < kDeadApis; ++I)
    Add("dead" + std::to_string(I), {"Orphan" + std::to_string(I)},
        "usize");
  std::vector<program::TemplateInput> Inputs = {
      {"n", Parser.parse("usize")}};

  // One cache for both sides, pre-warmed by the graph build itself: the
  // graph probes exactly the encoder's renamed (output, input) pairs, so
  // the off side measures warm memo lookups, not cold unifications.
  types::CompatCache Cache;
  api::DependencyGraph Graph =
      api::buildDependencyGraph(Db, Arena, Cache);

  StressResult On = runStress(true, Arena, Traits, Db, Graph, Cache, Inputs);
  StressResult Off =
      runStress(false, Arena, Traits, Db, Graph, Cache, Inputs);
  if (On.Hashes != Off.Hashes) {
    StreamsIdentical = false;
    std::fprintf(stderr, "FAIL: stress program stream diverged with "
                         "graph pruning on\n");
  }
  if (On.Prune.DeadSites != Off.Prune.DeadSites ||
      On.Prune.VarsAvoided != Off.Prune.VarsAvoided ||
      On.Prune.ClausesAvoided != Off.Prune.ClausesAvoided) {
    StreamsIdentical = false;
    std::fprintf(stderr, "FAIL: dead-site elimination diverged between "
                         "modes (must be structural)\n");
  }
  double StressSpeedup =
      On.BuildSeconds > 0 ? Off.BuildSeconds / On.BuildSeconds : 0;
  double Avoidance = avoidancePercent(On.Prune);

  Table TS({"Workload", "Build s (graph)", "Build s (no graph)", "Speedup",
            "Probe Avoidance", "Dead Sites", "Rebuilds", "Programs"});
  TS.addRow({"probe stress", format("%.4f", On.BuildSeconds),
             format("%.4f", Off.BuildSeconds),
             format("x%.2f", StressSpeedup), format("%.1f %%", Avoidance),
             format("%" PRIu64, On.Prune.DeadSites),
             format("%" PRIu64, On.Rebuilds),
             format("%" PRIu64, On.Emitted)});
  std::printf("%s\n", TS.render().c_str());

  J.meta("stress_rounds", json::Value::integer(kRounds));
  J.meta("stress_graph_probes",
         json::Value::integer(static_cast<int64_t>(On.Prune.GraphProbes)));
  J.meta("stress_fallback_probes",
         json::Value::integer(
             static_cast<int64_t>(On.Prune.FallbackProbes)));
  J.meta("stress_probe_avoidance_percent", json::Value::number(Avoidance));
  J.meta("stress_dead_sites",
         json::Value::integer(static_cast<int64_t>(On.Prune.DeadSites)));
  J.meta("stress_vars_avoided",
         json::Value::integer(static_cast<int64_t>(On.Prune.VarsAvoided)));
  J.meta("stress_clauses_avoided",
         json::Value::integer(
             static_cast<int64_t>(On.Prune.ClausesAvoided)));
  J.meta("encoding_build_wall_seconds_graph_on",
         json::Value::number(On.BuildSeconds));
  J.meta("encoding_build_wall_seconds_graph_off",
         json::Value::number(Off.BuildSeconds));
  J.meta("encoding_build_speedup", json::Value::number(StressSpeedup));

  // --- Part 2: real library models through the escape hatch. ------------
  std::printf("library models: %.0f simulated seconds per run, %d seeds "
              "per crate\n\n",
              Budget, Seeds);
  const char *Crates[] = {"slab", "smallvec", "hashbrown"};
  J.meta("budget_sim_seconds", json::Value::number(Budget));
  J.meta("seeds_per_crate", json::Value::integer(Seeds));

  Table T({"Library", "Seed", "Build s (graph)", "Build s (no graph)",
           "Probe Avoidance", "Dead Sites", "Programs"});
  double OnBuild = 0, OffBuild = 0, OnWall = 0, OffWall = 0;

  for (const char *Crate : Crates) {
    for (int I = 0; I < Seeds; ++I) {
      RunConfig OnC;
      OnC.BudgetSeconds = Budget;
      OnC.Seed = 2021 + static_cast<uint64_t>(I);
      RunConfig OffC = OnC;
      OffC.GraphPrune = false;

      WallTimer WOn;
      RunResult ROn = S.runOne(Crate, OnC);
      double HostOn = WOn.seconds();
      WallTimer WOff;
      RunResult ROff = S.runOne(Crate, OffC);
      double HostOff = WOff.seconds();

      if (ROn.Synthesized != ROff.Synthesized ||
          ROn.Rejected != ROff.Rejected ||
          ROn.Executed != ROff.Executed ||
          ROn.Synth.SolverConflicts != ROff.Synth.SolverConflicts ||
          ROn.Synth.PruneDeadSites != ROff.Synth.PruneDeadSites) {
        StreamsIdentical = false;
        std::fprintf(stderr,
                     "FAIL: %s seed %d diverged with graph pruning on\n",
                     Crate, I);
      }

      std::string Label =
          std::string(Crate) + "/seed" + std::to_string(2021 + I);
      J.addRun(Label + "/graph-on", ROn, HostOn);
      J.addRun(Label + "/no-graph", ROff, HostOff);
      OnBuild += ROn.Synth.BuildSeconds;
      OffBuild += ROff.Synth.BuildSeconds;
      OnWall += HostOn;
      OffWall += HostOff;

      PruneStats RunPrune;
      RunPrune.GraphProbes = ROn.Synth.PruneGraphProbes;
      RunPrune.FallbackProbes = ROn.Synth.PruneFallbackProbes;
      T.addRow({Crate, std::to_string(2021 + I),
                format("%.4f", ROn.Synth.BuildSeconds),
                format("%.4f", ROff.Synth.BuildSeconds),
                format("%.1f %%", avoidancePercent(RunPrune)),
                format("%" PRIu64, ROn.Synth.PruneDeadSites),
                format("%" PRIu64, ROn.Synthesized)});
    }
  }

  J.meta("library_build_wall_seconds_graph_on",
         json::Value::number(OnBuild));
  J.meta("library_build_wall_seconds_graph_off",
         json::Value::number(OffBuild));
  J.meta("host_wall_seconds_graph_on", json::Value::number(OnWall));
  J.meta("host_wall_seconds_graph_off", json::Value::number(OffWall));
  J.meta("streams_identical", json::Value::boolean(StreamsIdentical));

  std::printf("%s\n", T.render().c_str());
  std::printf("stress encoding-build wall time: %.4f s with graph, %.4f s "
              "without -> x%.2f speedup\n",
              On.BuildSeconds, Off.BuildSeconds, StressSpeedup);
  std::printf("stress probe avoidance: %.1f %% of probes answered by the "
              "graph bitset\n",
              Avoidance);
  std::printf("program streams identical: %s\n",
              StreamsIdentical ? "yes" : "NO - BUG");
  J.write();
  return StreamsIdentical ? 0 : 1;
}
