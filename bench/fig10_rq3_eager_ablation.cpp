//===--- fig10_rq3_eager_ablation.cpp - Reproduce Figure 10 (RQ3) ---------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Reproduces Figure 10: hybrid API refinement replaced with a SyPet-style
/// purely eager strategy on crossbeam (*2) and bitvec (*3). Expected
/// shape: the bugs are Not Found within budget, total and Type errors
/// explode, and the type-error mix is trait-dominated for bitvec and
/// polymorphism-dominated for crossbeam.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "core/Session.h"
#include "report/Table.h"
#include "support/StringUtils.h"

using namespace syrust;
using namespace syrust::bench;
using namespace syrust::core;
using namespace syrust::crates;
using namespace syrust::report;
using namespace syrust::rustsim;

int main() {
  core::Session S;
  // The eager variant synthesizes (and rejects) an order of magnitude
  // more test cases per simulated second, so the default budget is
  // smaller than Figure 7/9's; the explosion is visible immediately.
  double Budget = envBudget("SYRUST_BUDGET", 6000.0);
  banner("Figure 10",
         "RQ3 - hybrid refinement replaced by purely eager instantiation");

  Table Summary({"Bug", "Found?", "Increase in # Errors",
                 "Increase in # Type Errors", "Trait Errors",
                 "Polymorphism Errors", "Misc. Errors"});
  BenchJson J("fig10_rq3_eager_ablation");
  J.meta("budget_sim_seconds", json::Value::number(Budget));

  for (const char *Name : {"crossbeam", "bitvec"}) {
    const CrateSpec *Spec = findCrate(Name);
    RunConfig Base;
    Base.BudgetSeconds = Budget;
    RunConfig Eager = Base;
    Eager.Mode = refine::RefinementMode::PurelyEager;
    Eager.EagerCap = 24;

    WallTimer WBase;
    RunResult RBase = S.runOne(*Spec, Base);
    J.addRun(std::string(Name) + "/base", RBase, WBase.seconds());
    WallTimer WEager;
    RunResult REager = S.runOne(*Spec, Eager);
    J.addRun(std::string(Name) + "/eager", REager, WEager.seconds());

    auto Det = [](const RunResult &R, ErrorDetail D) {
      auto It = R.ByDetail.find(D);
      return It == R.ByDetail.end() ? uint64_t{0} : It->second;
    };
    uint64_t TypeBase = 0, TypeEager = 0;
    if (auto It = RBase.ByCategory.find(ErrorCategory::Type);
        It != RBase.ByCategory.end())
      TypeBase = It->second;
    if (auto It = REager.ByCategory.find(ErrorCategory::Type);
        It != REager.ByCategory.end())
      TypeEager = It->second;

    uint64_t Trait = Det(REager, ErrorDetail::TraitBound);
    uint64_t Poly = Det(REager, ErrorDetail::Polymorphism) +
                    Det(REager, ErrorDetail::DefaultTypeParam) +
                    Det(REager, ErrorDetail::TypeMismatch);
    uint64_t MiscTy = TypeEager - std::min(TypeEager, Trait + Poly);
    double Denom = static_cast<double>(std::max<uint64_t>(TypeEager, 1));

    auto Increase = [](uint64_t From, uint64_t To) {
      if (From == 0)
        return format("%llu (0 -> %llu)",
                      static_cast<unsigned long long>(To),
                      static_cast<unsigned long long>(To));
      return format("%llu (x%.2f)", static_cast<unsigned long long>(To),
                    static_cast<double>(To) / static_cast<double>(From));
    };

    Summary.addRow(
        {std::string(Spec->Bug->Label) + " (" + Name + ")",
         REager.BugFound ? format("yes (%.1f s)", REager.TimeToBug)
                         : "Not Found",
         Increase(RBase.Rejected, REager.Rejected),
         Increase(TypeBase, TypeEager),
         format("%.2f %%", 100.0 * static_cast<double>(Trait) / Denom),
         format("%.2f %%", 100.0 * static_cast<double>(Poly) / Denom),
         format("%.2f %%", 100.0 * static_cast<double>(MiscTy) / Denom)});

    // Error-rate curve of the ablated run (figure top row).
    Table Curve({"t (s)", "baseline %", "eager %"});
    size_t N = std::min(RBase.Curve.size(), REager.Curve.size());
    size_t Step = N > 12 ? N / 12 : 1;
    for (size_t I = 0; I < N; I += Step) {
      auto Rate = [](const CurvePoint &P) {
        return P.Synthesized == 0
                   ? 0.0
                   : 100.0 * static_cast<double>(P.Rejected) /
                         static_cast<double>(P.Synthesized);
      };
      Curve.addRow({format("%.0f", REager.Curve[I].AtSeconds),
                    format("%.3f", Rate(RBase.Curve[I])),
                    format("%.3f", Rate(REager.Curve[I]))});
    }
    std::printf("%s: cumulative rejection rate over time\n%s\n", Name,
                Curve.render().c_str());
  }

  std::printf("%s\n", Summary.render().c_str());
  J.write();
  return 0;
}
