//===--- micro_sat.cpp - google-benchmark microbenches for the solver -----===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Engineering benchmarks for the Sat4J-substitute CDCL solver, including
/// the DESIGN.md ablation: native counting-propagation cardinality
/// constraints vs. the naive pairwise CNF expansion of AtMostOne.
///
//===----------------------------------------------------------------------===//

#include "sat/ModelEnumerator.h"
#include "sat/Solver.h"
#include "support/Rng.h"

#include "MicroMain.h"

#include <benchmark/benchmark.h>

using namespace syrust;
using namespace syrust::sat;

namespace {

/// Random 3-SAT near the phase transition (ratio 4.26).
void buildRandom3Sat(Solver &S, int N, uint64_t Seed) {
  Rng R(Seed);
  std::vector<Var> Vars;
  for (int I = 0; I < N; ++I)
    Vars.push_back(S.newVar());
  int Clauses = static_cast<int>(N * 4.26);
  for (int C = 0; C < Clauses; ++C) {
    std::vector<Lit> Cl;
    while (Cl.size() < 3) {
      Var V = Vars[R.below(static_cast<uint64_t>(N))];
      bool Dup = false;
      for (Lit L : Cl)
        Dup = Dup || var(L) == V;
      if (!Dup)
        Cl.push_back(mkLit(V, R.chance(0.5)));
    }
    S.addClause(Cl);
  }
}

void BM_Random3SatPhaseTransition(benchmark::State &State) {
  uint64_t Seed = 1;
  for (auto _ : State) {
    Solver S;
    buildRandom3Sat(S, static_cast<int>(State.range(0)), Seed++);
    benchmark::DoNotOptimize(S.solve());
  }
}
BENCHMARK(BM_Random3SatPhaseTransition)->Arg(50)->Arg(100)->Arg(150);

void addPigeonhole(Solver &S, int Pigeons, int Holes, bool NativeCard) {
  std::vector<std::vector<Var>> P(static_cast<size_t>(Pigeons),
                                  std::vector<Var>(
                                      static_cast<size_t>(Holes)));
  for (auto &Row : P)
    for (Var &V : Row)
      V = S.newVar();
  for (auto &Row : P) {
    std::vector<Lit> AtLeastOne;
    for (Var V : Row)
      AtLeastOne.push_back(mkLit(V));
    S.addClause(AtLeastOne);
  }
  for (int H = 0; H < Holes; ++H) {
    std::vector<Lit> Column;
    for (int I = 0; I < Pigeons; ++I)
      Column.push_back(mkLit(P[static_cast<size_t>(I)]
                              [static_cast<size_t>(H)]));
    if (NativeCard) {
      S.addAtMost(Column, 1);
    } else {
      // Ablation: pairwise CNF expansion of AtMostOne.
      for (size_t A = 0; A < Column.size(); ++A)
        for (size_t B = A + 1; B < Column.size(); ++B)
          S.addClause(~Column[A], ~Column[B]);
    }
  }
}

void BM_PigeonholeNativeCardinality(benchmark::State &State) {
  for (auto _ : State) {
    Solver S;
    addPigeonhole(S, static_cast<int>(State.range(0)),
                  static_cast<int>(State.range(0)) - 1, true);
    benchmark::DoNotOptimize(S.solve());
  }
}
BENCHMARK(BM_PigeonholeNativeCardinality)->Arg(6)->Arg(7)->Arg(8);

void BM_PigeonholePairwiseCnf(benchmark::State &State) {
  for (auto _ : State) {
    Solver S;
    addPigeonhole(S, static_cast<int>(State.range(0)),
                  static_cast<int>(State.range(0)) - 1, false);
    benchmark::DoNotOptimize(S.solve());
  }
}
BENCHMARK(BM_PigeonholePairwiseCnf)->Arg(6)->Arg(7)->Arg(8);

void BM_ModelEnumerationChoose(benchmark::State &State) {
  // Enumerate all C(n, n/2) models of an Exactly-k constraint.
  for (auto _ : State) {
    Solver S;
    std::vector<Var> Vars;
    std::vector<Lit> Lits;
    for (int I = 0; I < State.range(0); ++I) {
      Vars.push_back(S.newVar());
      Lits.push_back(mkLit(Vars.back()));
    }
    S.addExactly(Lits, static_cast<int>(State.range(0)) / 2);
    ModelEnumerator Enum(S, Vars);
    uint64_t Count = 0;
    while (Enum.next())
      ++Count;
    benchmark::DoNotOptimize(Count);
  }
}
BENCHMARK(BM_ModelEnumerationChoose)->Arg(10)->Arg(14);

void BM_IncrementalBlocking(benchmark::State &State) {
  // The Algorithm 1 pattern: solve, block a small clause, re-solve.
  for (auto _ : State) {
    Solver S;
    std::vector<Var> Vars;
    for (int I = 0; I < 60; ++I)
      Vars.push_back(S.newVar());
    buildRandom3Sat(S, 40, 7);
    int Rounds = 0;
    while (S.solve() == SolveResult::Sat && Rounds++ < 50) {
      std::vector<Lit> Block;
      for (int I = 0; I < 12; ++I)
        Block.push_back(mkLit(Vars[static_cast<size_t>(I)],
                              S.modelValue(Vars[static_cast<size_t>(I)]) ==
                                  Value::True));
      S.addClause(Block);
    }
    benchmark::DoNotOptimize(Rounds);
  }
}
BENCHMARK(BM_IncrementalBlocking);

} // namespace

SYRUST_BENCHMARK_MAIN("micro_sat")
