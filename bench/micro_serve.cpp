//===--- micro_serve.cpp - Serve-daemon overhead microbench ---------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// A/B benchmark for the `syrust serve` daemon (serve/Server.h), in two
/// parts.
///
/// Part 1 (the headline number) measures warm-session amortization: the
/// daemon's whole value proposition is paying each crate's analysis
/// build (spec parsing, signature instantiation, compat-matrix
/// precompute) once per process instead of once per invocation. The
/// cold side simulates the offline CLI by constructing a fresh
/// core::Session for every request and running one synthesis pass; the
/// warm side runs the identical request sequence against one shared
/// Session, exactly as the daemon's executor does. Both sides run the
/// same crates, seeds, and simulated budgets; the spread is pure
/// per-invocation startup cost, and it grows with the number of
/// requests while the warm side's build count stays pinned at the
/// number of distinct crates (Session::analysisStats()).
///
/// Part 2 measures the wire itself. A real daemon is started on a
/// scratch AF_UNIX socket and three numbers are taken: ping round-trip
/// time (the floor: framing + socket + queue handoff, no work), a
/// campaign submitted over the socket versus the same campaign through
/// cli::execute in-process (the marginal cost of the process boundary
/// on a real verb), and a byte-comparison of the two campaigns'
/// aggregate.json — the serve contract says the daemon's response IS
/// the offline response, and this bench fails (exit 1) if they differ.
///
/// Writes BENCH_serve.json. Scale with SYRUST_BUDGET (simulated seconds
/// per synthesis pass, default 10) and SYRUST_ROUNDS (amortization
/// rounds over the crate list, default 4).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "cli/Execute.h"
#include "cli/RequestSpec.h"
#include "core/Session.h"
#include "report/Table.h"
#include "serve/Client.h"
#include "serve/Server.h"

#include <cinttypes>
#include <cstdint>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace syrust;
using namespace syrust::bench;
using namespace syrust::core;
using namespace syrust::report;

namespace {

/// The amortization request mix: three cheap-to-synthesize crates so
/// the analysis build is a visible fraction of each request.
const char *kCrates[] = {"slab", "bytes", "smallvec"};

struct AmortSide {
  double WallSeconds = 0;
  uint64_t Builds = 0;
  uint64_t Hits = 0;
  int Requests = 0;
};

/// Cold side: a fresh Session per request, the way one offline CLI
/// invocation pays for it. Every request is a build, never a hit.
AmortSide runCold(double Budget, int Rounds) {
  AmortSide Out;
  WallTimer W;
  for (int R = 0; R < Rounds; ++R)
    for (const char *Crate : kCrates) {
      Session Cold;
      RunConfig C;
      C.BudgetSeconds = Budget;
      C.Seed = 2021 + static_cast<uint64_t>(R);
      Cold.runOne(Crate, C);
      Out.Builds += Cold.analysisStats().Builds;
      Out.Hits += Cold.analysisStats().Hits;
      ++Out.Requests;
    }
  Out.WallSeconds = W.seconds();
  return Out;
}

/// Warm side: the identical request sequence against one shared
/// Session — the daemon's executor loop without the socket.
AmortSide runWarm(Session &S, BenchJson &J, double Budget, int Rounds) {
  AmortSide Out;
  WallTimer W;
  for (int R = 0; R < Rounds; ++R)
    for (const char *Crate : kCrates) {
      RunConfig C;
      C.BudgetSeconds = Budget;
      C.Seed = 2021 + static_cast<uint64_t>(R);
      WallTimer WRun;
      RunResult Res = S.runOne(Crate, C);
      J.addRun(std::string("warm/") + Crate + "/seed" +
                   std::to_string(2021 + R),
               Res, WRun.seconds());
      ++Out.Requests;
    }
  Out.WallSeconds = W.seconds();
  Out.Builds = S.analysisStats().Builds;
  Out.Hits = S.analysisStats().Hits;
  return Out;
}

/// The campaign both sides of part 2 run: small enough to finish in
/// seconds, big enough that the wire cost is measured against real work.
bool campaignSpec(double Budget, cli::RequestSpec &Spec,
                  std::string &Err) {
  const char *Argv[] = {"--crates", "slab,bytes", "--seeds",
                        "2021..2022", "--budget", nullptr,
                        "--out", "bench-serve-out"};
  std::string BudgetStr = std::to_string(Budget);
  Argv[5] = BudgetStr.c_str();
  std::vector<std::string> Errors;
  if (!cli::parseArgv(cli::Verb::Campaign,
                      static_cast<int>(sizeof(Argv) / sizeof(Argv[0])),
                      Argv, Spec, Errors)) {
    Err = Errors.empty() ? "parse failed" : Errors.front();
    return false;
  }
  return true;
}

/// aggregate.json out of a Response's carried files; empty if absent.
std::string aggregateOf(const cli::Response &R) {
  for (const auto &[Path, Content] : R.Files)
    if (Path.size() >= 14 &&
        Path.compare(Path.size() - 14, 14, "aggregate.json") == 0)
      return Content;
  return std::string();
}

} // namespace

int main() {
  double Budget = envBudget("SYRUST_BUDGET", 10.0);
  int Rounds = static_cast<int>(envBudget("SYRUST_ROUNDS", 4));
  banner("micro_serve",
         "serve daemon: warm-session amortization and wire overhead");

  BenchJson J("serve");
  J.meta("budget_sim_seconds", json::Value::number(Budget));
  J.meta("rounds", json::Value::integer(Rounds));

  // --- Part 1: warm-session amortization (headline). --------------------
  int Requests = Rounds * static_cast<int>(sizeof(kCrates) /
                                           sizeof(kCrates[0]));
  std::printf("amortization: %d requests (%d rounds over %zu crates), "
              "%.0f simulated seconds each\n\n",
              Requests, Rounds, sizeof(kCrates) / sizeof(kCrates[0]),
              Budget);

  Session Warm;
  AmortSide Cold = runCold(Budget, Rounds);
  AmortSide WarmSide = runWarm(Warm, J, Budget, Rounds);

  Table TA({"Side", "Requests", "Wall s", "Analyses built", "Warm hits"});
  TA.addRow({"cold: Session per request", std::to_string(Cold.Requests),
             format("%.4f", Cold.WallSeconds),
             format("%" PRIu64, Cold.Builds),
             format("%" PRIu64, Cold.Hits)});
  TA.addRow({"warm: one shared Session",
             std::to_string(WarmSide.Requests),
             format("%.4f", WarmSide.WallSeconds),
             format("%" PRIu64, WarmSide.Builds),
             format("%" PRIu64, WarmSide.Hits)});
  std::printf("%s\n", TA.render().c_str());

  double Speedup = WarmSide.WallSeconds > 0
                       ? Cold.WallSeconds / WarmSide.WallSeconds
                       : 0;
  std::printf("cold %.4f s vs warm %.4f s -> x%.2f; warm side built "
              "%" PRIu64 " analyses for %d requests (%" PRIu64
              " hits), cold side rebuilt every time\n\n",
              Cold.WallSeconds, WarmSide.WallSeconds, Speedup,
              WarmSide.Builds, WarmSide.Requests, WarmSide.Hits);

  J.meta("amortization_wall_seconds_cold",
         json::Value::number(Cold.WallSeconds));
  J.meta("amortization_wall_seconds_warm",
         json::Value::number(WarmSide.WallSeconds));
  J.meta("amortization_speedup", json::Value::number(Speedup));
  J.meta("amortization_requests", json::Value::integer(Requests));
  J.meta("analyses_built_cold",
         json::Value::integer(static_cast<int64_t>(Cold.Builds)));
  J.meta("analyses_built_warm",
         json::Value::integer(static_cast<int64_t>(WarmSide.Builds)));
  J.meta("warm_hits",
         json::Value::integer(static_cast<int64_t>(WarmSide.Hits)));

  // --- Part 2: the wire. Daemon on a scratch socket, served by the
  // already-warm Session so both sides of the A/B start warm. ----------
  cli::ServeRequest Opts;
  Opts.SocketPath = "/tmp/syrust_microserve_" +
                    std::to_string(::getpid()) + ".sock";
  serve::Server Srv(Warm, Opts);
  std::string Err;
  if (!Srv.start(Err)) {
    std::fprintf(stderr, "FAIL: cannot start daemon: %s\n", Err.c_str());
    return 1;
  }
  int ServerExit = -1;
  std::thread ServerThread([&] { ServerExit = Srv.run(); });

  serve::Client C;
  if (!C.connect(Opts.SocketPath, Err)) {
    std::fprintf(stderr, "FAIL: cannot connect: %s\n", Err.c_str());
    Srv.requestStop();
    ServerThread.join();
    return 1;
  }

  // Ping floor: framing + socket + queue handoff, no work at all.
  constexpr int kPings = 256;
  json::Value Ping = json::Value::object();
  Ping.set("verb", json::Value::string("ping"));
  double PingMin = 1e9;
  WallTimer WPing;
  for (int I = 0; I < kPings; ++I) {
    WallTimer W1;
    json::Value Resp;
    if (!C.call(Ping, Resp, Err)) {
      std::fprintf(stderr, "FAIL: ping: %s\n", Err.c_str());
      Srv.requestStop();
      ServerThread.join();
      return 1;
    }
    double S1 = W1.seconds();
    if (S1 < PingMin)
      PingMin = S1;
  }
  double PingMean = WPing.seconds() / kPings;

  // The same campaign in-process and over the socket. The daemon runs
  // the identical cli::execute against the identical warm Session, so
  // the wall difference is the process boundary and the aggregates
  // must match byte for byte.
  cli::RequestSpec Spec;
  if (!campaignSpec(Budget, Spec, Err)) {
    std::fprintf(stderr, "FAIL: campaign spec: %s\n", Err.c_str());
    Srv.requestStop();
    ServerThread.join();
    return 1;
  }
  std::vector<std::string> FinalizeErrs = cli::finalize(Warm, Spec);
  if (!FinalizeErrs.empty()) {
    std::fprintf(stderr, "FAIL: finalize: %s\n",
                 FinalizeErrs.front().c_str());
    Srv.requestStop();
    ServerThread.join();
    return 1;
  }

  WallTimer WLocal;
  cli::Response Local = cli::execute(Warm, Spec);
  double LocalWall = WLocal.seconds();

  json::Value WireReq;
  {
    const char *Argv[] = {"--crates", "slab,bytes", "--seeds",
                          "2021..2022", "--budget", nullptr,
                          "--out", "bench-serve-out"};
    std::string BudgetStr = std::to_string(Budget);
    Argv[5] = BudgetStr.c_str();
    std::vector<std::string> Errors;
    if (!cli::argvToRequestJson(
            cli::Verb::Campaign,
            static_cast<int>(sizeof(Argv) / sizeof(Argv[0])), Argv,
            WireReq, Errors)) {
      std::fprintf(stderr, "FAIL: request encode\n");
      Srv.requestStop();
      ServerThread.join();
      return 1;
    }
  }
  WallTimer WWire;
  json::Value WireRespDoc;
  cli::Response Wire;
  bool WireOk = C.call(WireReq, WireRespDoc, Err) &&
                serve::responseFromJson(WireRespDoc, Wire, Err);
  double WireWall = WWire.seconds();
  if (!WireOk) {
    std::fprintf(stderr, "FAIL: wire campaign: %s\n", Err.c_str());
    Srv.requestStop();
    ServerThread.join();
    return 1;
  }

  bool AggIdentical = aggregateOf(Local) == aggregateOf(Wire) &&
                      !aggregateOf(Local).empty() &&
                      Local.ExitCode == Wire.ExitCode;
  if (!AggIdentical)
    std::fprintf(stderr, "FAIL: socket campaign diverged from the "
                         "in-process campaign\n");

  C.close();
  Srv.requestStop();
  ServerThread.join();
  ::unlink(Opts.SocketPath.c_str());

  Table TW({"Measurement", "Value"});
  TW.addRow({"ping round trip, mean", format("%.1f us", PingMean * 1e6)});
  TW.addRow({"ping round trip, min", format("%.1f us", PingMin * 1e6)});
  TW.addRow({"campaign in-process", format("%.4f s", LocalWall)});
  TW.addRow({"campaign over socket", format("%.4f s", WireWall)});
  TW.addRow({"wire overhead", format("%.4f s", WireWall - LocalWall)});
  TW.addRow({"aggregate bytes", AggIdentical ? "identical" : "DIVERGED"});
  std::printf("%s\n", TW.render().c_str());

  J.meta("ping_count", json::Value::integer(kPings));
  J.meta("ping_rtt_mean_seconds", json::Value::number(PingMean));
  J.meta("ping_rtt_min_seconds", json::Value::number(PingMin));
  J.meta("campaign_wall_seconds_inprocess",
         json::Value::number(LocalWall));
  J.meta("campaign_wall_seconds_wire", json::Value::number(WireWall));
  J.meta("wire_overhead_seconds",
         json::Value::number(WireWall - LocalWall));
  J.meta("aggregate_identical", json::Value::boolean(AggIdentical));
  J.meta("server_exit_code", json::Value::integer(ServerExit));

  std::printf("amortization: x%.2f over %d requests; wire overhead "
              "%.1f ms on a %.1f s campaign (ping floor %.1f us)\n",
              Speedup, Requests, (WireWall - LocalWall) * 1e3, LocalWall,
              PingMin * 1e6);
  J.write();
  return AggIdentical && ServerExit == cli::ExitOk ? 0 : 1;
}
