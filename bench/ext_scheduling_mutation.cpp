//===--- ext_scheduling_mutation.cpp - Section 7.4 extensions -------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Ablation bench for the two future-work directions the paper names and
/// this reproduction implements:
///
///   * Section 7.4.3 (optimal scheduling of tests): round-robin across
///     program lengths instead of exhausting each length. The paper asks
///     whether such prioritization finds bugs quicker; on these models
///     the measured answer is NO - each bug sits either early in
///     Algorithm 1's order or deep within its own length class, so
///     diluting per-length throughput delays it. The table reports the
///     comparison either way.
///   * Section 7.4.2 (inputs to the test program): mutate template input
///     values between executions; data-dependent branches flip, raising
///     branch coverage ("the low branch coverage is mainly caused by the
///     lack of input mutations", Section 7.3).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "core/Session.h"
#include "report/Table.h"
#include "support/StringUtils.h"

using namespace syrust;
using namespace syrust::bench;
using namespace syrust::core;
using namespace syrust::crates;
using namespace syrust::report;

int main() {
  core::Session S;
  double Budget = envBudget("SYRUST_BUDGET", 8000.0);
  banner("Extensions", "scheduling (7.4.3) and input mutation (7.4.2)");

  BenchJson J("ext_scheduling_mutation");
  J.meta("budget_sim_seconds", json::Value::number(Budget));

  // --- 7.4.3: time-to-bug with and without length interleaving. --------
  Table Sched({"Bug", "Library", "Algorithm 1 (s)", "Interleaved (s)",
               "Speedup"});
  for (const CrateSpec *Spec : buggyCrates()) {
    RunConfig Plain;
    Plain.BudgetSeconds = Budget;
    Plain.StopOnFirstBug = true;
    RunConfig Inter = Plain;
    Inter.InterleaveLengths = true;
    WallTimer WPlain;
    RunResult RPlain = S.runOne(*Spec, Plain);
    J.addRun(Spec->Info.Name + "/plain", RPlain, WPlain.seconds());
    WallTimer WInter;
    RunResult RInter = S.runOne(*Spec, Inter);
    J.addRun(Spec->Info.Name + "/interleaved", RInter, WInter.seconds());
    auto Time = [](const RunResult &R) {
      return R.BugFound ? format("%.1f", R.TimeToBug)
                        : std::string("not found");
    };
    std::string Speedup = "-";
    if (RPlain.BugFound && RInter.BugFound && RInter.TimeToBug > 0)
      Speedup = format("x%.2f", RPlain.TimeToBug / RInter.TimeToBug);
    else if (!RPlain.BugFound && RInter.BugFound)
      Speedup = "found only when interleaved";
    Sched.addRow({Spec->Bug->Label, Spec->Info.Name, Time(RPlain),
                  Time(RInter), Speedup});
  }
  std::printf("Scheduling: time to first bug\n%s\n", Sched.render().c_str());

  // --- 7.4.2: branch coverage with and without input mutation. ----------
  Table Cov({"Library", "Branch (fixed inputs)", "Branch (mutated)",
             "Line (fixed)", "Line (mutated)"});
  for (const char *Name : {"bitvec", "crossbeam", "bstr", "slab"}) {
    const CrateSpec *Spec = findCrate(Name);
    RunConfig Fixed;
    Fixed.BudgetSeconds = Budget / 2;
    RunConfig Mutated = Fixed;
    Mutated.MutateInputs = true;
    WallTimer WFixed;
    RunResult RFixed = S.runOne(*Spec, Fixed);
    J.addRun(std::string(Name) + "/fixed-inputs", RFixed,
             WFixed.seconds());
    WallTimer WMut;
    RunResult RMut = S.runOne(*Spec, Mutated);
    J.addRun(std::string(Name) + "/mutated-inputs", RMut,
             WMut.seconds());
    Cov.addRow({Name,
                format("%.2f %%", RFixed.Coverage.ComponentBranch),
                format("%.2f %%", RMut.Coverage.ComponentBranch),
                format("%.2f %%", RFixed.Coverage.ComponentLine),
                format("%.2f %%", RMut.Coverage.ComponentLine)});
  }
  std::printf("Input mutation: component coverage\n%s\n",
              Cov.render().c_str());

  // --- Section 5's premise: purely lazy refinement "trivially fails as
  // it cannot handle object constructors in Rust". Constructor-centric
  // crossbeam-queue collapses under it.
  Table Lazy({"Library", "Mode", "Synthesized", "Executed",
              "Bug Found?"});
  for (auto Mode : {refine::RefinementMode::Hybrid,
                    refine::RefinementMode::PurelyLazy}) {
    RunConfig C;
    C.BudgetSeconds = 300;
    C.Mode = Mode;
    RunResult R =
        S.runOne(*findCrate("crossbeam-queue"), C);
    Lazy.addRow({"crossbeam-queue",
                 Mode == refine::RefinementMode::Hybrid ? "hybrid"
                                                        : "purely lazy",
                 fmtCount(R.Synthesized), fmtCount(R.Executed),
                 R.BugFound ? "yes" : "no"});
  }
  std::printf("Purely lazy refinement (Section 5.1's failure mode)\n%s\n",
              Lazy.render().c_str());
  J.write();
  return 0;
}
