//===--- fig6_rejection_rates.cpp - Reproduce Figure 6 --------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Reproduces Figure 6: for every evaluated library, the number of test
/// cases synthesized within budget, the share rejected by the compiler,
/// and the rejection breakdown into Type / Lifetime&Ownership /
/// Miscellaneous. Libraries where SyRust found a bug are starred.
///
/// Expected shape vs. the paper (absolute counts scale with the budget):
/// most libraries reject well under 1%; petgraph and bytemuck are the
/// outliers; generic-array/hashbrown are Misc-dominated; csv-core/sval/
/// cbor-codec are Lifetime&Ownership-dominated; dashmap executes about
/// half as many cases (Miri-slow).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "core/Session.h"
#include "report/Table.h"

using namespace syrust;
using namespace syrust::bench;
using namespace syrust::core;
using namespace syrust::crates;
using namespace syrust::report;
using namespace syrust::rustsim;

int main() {
  core::Session S;
  double Budget = envBudget("SYRUST_BUDGET", 600.0);
  banner("Figure 6", "rejection rates and error breakdown per library");
  std::printf("budget: %.0f simulated seconds per library "
              "(paper: 36000 s on a 64-container cluster)\n\n",
              Budget);

  Table T({"Library", "Max Len", "# Synthesized", "# Rejected (%)",
           "Type (%)", "Lifetime&Ownership (%)", "Misc (%)"});
  BenchJson J("fig6_rejection_rates");
  J.meta("budget_sim_seconds", json::Value::number(Budget));

  for (const CrateSpec &Spec : allCrates()) {
    if (!Spec.Info.SupportsSynthesis)
      continue; // cookie-factory / jsonrpc-client-core (Section 7.1).
    RunConfig Config;
    Config.BudgetSeconds = Budget;
    WallTimer W;
    RunResult R = S.runOne(Spec, Config);
    J.addRun(Spec.Info.Name, R, W.seconds());
    std::string Name = Spec.Info.Name + (R.BugFound ? " *" : "");
    T.addRow({Name, fmtCount(static_cast<uint64_t>(R.MaxLenReached)),
              fmtCount(R.Synthesized),
              fmtCount(R.Rejected) + " (" +
                  fmtPercent(R.rejectedPercent()) + ")",
              fmtShare(R.categoryPercent(ErrorCategory::Type)),
              fmtShare(
                  R.categoryPercent(ErrorCategory::LifetimeOwnership)),
              fmtShare(R.categoryPercent(ErrorCategory::Misc))});
  }

  std::printf("%s\n", T.render().c_str());
  std::printf("* = library flagged as buggy by this run (see Figure 7 "
              "bench).\nExcluded as in the paper: cookie-factory, "
              "jsonrpc-client-core (closure-based APIs).\n");
  J.write();
  return 0;
}
