//===--- micro_executor.cpp - google-benchmark for the test executor ------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Throughput of the two test-executor stages - the rustsim compile and
/// the miri interpretation - over real synthesized programs. Backs the
/// Section 6.3 observation that executing test cases, not solving
/// constraint formulas, dominates the pipeline.
///
//===----------------------------------------------------------------------===//

#include "crates/CrateRegistry.h"
#include "miri/Interpreter.h"
#include "rustsim/Checker.h"
#include "synth/Synthesizer.h"

#include "MicroMain.h"

#include <benchmark/benchmark.h>

using namespace syrust;
using namespace syrust::crates;
using namespace syrust::miri;
using namespace syrust::program;

namespace {

/// Synthesizes a corpus of programs for one crate (checker-accepted only
/// when \p OnlyValid).
std::vector<Program> corpus(CrateInstance &Inst, size_t N,
                            bool OnlyValid) {
  synth::Synthesizer Synth(Inst.Arena, Inst.Traits, Inst.Db, Inst.Inputs,
                           Inst.MaxLen, synth::SynthOptions{});
  rustsim::Checker Check(Inst.Arena, Inst.Traits);
  std::vector<Program> Out;
  while (Out.size() < N) {
    auto P = Synth.next();
    if (!P)
      break;
    if (OnlyValid && !Check.check(*P, Inst.Db).Success)
      continue;
    Out.push_back(*P);
  }
  return Out;
}

void BM_CheckerCompile(benchmark::State &State) {
  auto Inst = findCrate("bitvec")->instantiate();
  auto Programs = corpus(*Inst, 300, /*OnlyValid=*/false);
  rustsim::Checker Check(Inst->Arena, Inst->Traits);
  for (auto _ : State) {
    int Accepted = 0;
    for (const Program &P : Programs)
      Accepted += Check.check(P, Inst->Db).Success ? 1 : 0;
    benchmark::DoNotOptimize(Accepted);
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(Programs.size()));
}
BENCHMARK(BM_CheckerCompile);

void BM_MiriExecute(benchmark::State &State) {
  auto Inst = findCrate("bitvec")->instantiate();
  auto Programs = corpus(*Inst, 300, /*OnlyValid=*/true);
  Interpreter Interp(Inst->Db, Inst->Traits, Inst->Registry, Inst->Init);
  for (auto _ : State) {
    int Ubs = 0;
    for (const Program &P : Programs)
      Ubs += Interp.run(P).UbFound ? 1 : 0;
    benchmark::DoNotOptimize(Ubs);
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(Programs.size()));
}
BENCHMARK(BM_MiriExecute);

void BM_FullExecutorStage(benchmark::State &State) {
  // Compile + execute, the per-test-case cost Algorithm 1 pays.
  auto Inst = findCrate("slab")->instantiate();
  auto Programs = corpus(*Inst, 300, /*OnlyValid=*/false);
  rustsim::Checker Check(Inst->Arena, Inst->Traits);
  Interpreter Interp(Inst->Db, Inst->Traits, Inst->Registry, Inst->Init);
  for (auto _ : State) {
    int Executed = 0;
    for (const Program &P : Programs) {
      if (!Check.check(P, Inst->Db).Success)
        continue;
      benchmark::DoNotOptimize(Interp.run(P).UbFound);
      ++Executed;
    }
    benchmark::DoNotOptimize(Executed);
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(Programs.size()));
}
BENCHMARK(BM_FullExecutorStage);

} // namespace

SYRUST_BENCHMARK_MAIN("micro_executor")
