//===--- micro_portfolio.cpp - Solver-portfolio A/B microbench ------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// A/B benchmark for the solver-strategy portfolio (sat/Portfolio.h), in
/// two parts.
///
/// Part 1 (the headline number) is a hard-episode retirement stress built
/// for the workload the portfolio targets: solve episodes whose Unsat
/// proof costs far more conflicts than one episode's budget. The
/// synthesizer meets these as length-exhaustion proofs: an episode that
/// trips the conflict budget returns Unknown, the length goes dormant
/// instead of retiring, and every later database change revives it for
/// another budget-capped attempt (Synthesizer::notifyDatabaseChanged).
/// Under the rebuild-the-world refinement path each revival replays the
/// formula into a fresh solver, so the attempts share no learned clauses
/// and the proof never completes - the off side pays one budget per round
/// forever. The portfolio instead races helper strategies the moment
/// member 0's budget trips; a helper carries BudgetFactor x the episode
/// budget, finishes the proof once, and the Unsat retires the length
/// permanently (proofs survive destructive changes, so no revival ever
/// re-solves it). Episodes are fixed-seed random 3-SAT at 4.4 clauses per
/// variable - comfortably past the phase transition, so the chosen seeds
/// are Unsat with proofs of 1-3k conflicts, which real solver-strategy
/// variance makes an honest race. Both sides run the identical formulas;
/// the only difference is Portfolio::configure.
///
/// The off side's wall-to-retirement under rebuild revivals is infinite -
/// every attempt starts from scratch - so the off number reported here is
/// a lower bound at the configured revival cap, and the headline speedup
/// only grows as campaigns run longer. The racers share the machine's
/// cores; on a single-core host they serialize, which the recorded
/// hardware_concurrency makes explicit.
///
/// Part 2 runs the two slowest library models from BENCH_compat.json
/// (crossbeam and smallvec) through core::Session with the portfolio on
/// and off, at the default solve budget and at a deliberately tight one.
/// Real-model episodes at laptop-scale budgets rarely cost more than a
/// few dozen conflicts, so no solve-wall win is claimed here (the compat
/// bench makes the same call for its part 2); this part exists to verify
/// the portfolio's core contract end to end - the recorded program
/// streams, verdict by verdict, must be byte-identical with the portfolio
/// on and off - and to report production race counters.
///
/// Writes BENCH_portfolio.json. Scale part 2 with SYRUST_BUDGET
/// (simulated seconds per run, default 120) and SYRUST_SEEDS (default 2).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "core/Session.h"
#include "report/Table.h"
#include "sat/Portfolio.h"
#include "support/StringUtils.h"

#include <cinttypes>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

using namespace syrust;
using namespace syrust::bench;
using namespace syrust::core;
using namespace syrust::report;
using namespace syrust::sat;

namespace {

// Stress-episode shape. 4.4 clauses per variable sits past the random
// 3-SAT phase transition (~4.27), so most seeds are Unsat; the list below
// holds only seeds verified Unsat, with resolution proofs of 1.1-2.8k
// conflicts for every portfolio strategy - an order of magnitude over the
// per-episode budget, which is what makes the episode "hard": no single
// budget-capped attempt can finish the proof.
constexpr int kStressVars = 150;
constexpr int kStressClauses = 660;
constexpr uint64_t kStressSeeds[] = {1, 2, 3, 4, 6, 10, 14, 22};
constexpr uint64_t kEpisodeBudget = 200;
// Revival rounds the off side is granted before the bench gives up on a
// proof ever completing. Under rebuild-the-world refinement the off side
// cannot converge at any round count (fresh solver per round), so this
// cap only bounds the measurement; raising it scales the off-side wall
// linearly without changing the outcome. 64 is generous next to real
// campaigns, whose refinement loops revive every dormant length on every
// destructive database change.
constexpr int kRebuildRounds = 64;
// With incremental refinement the learned clauses persist, so the proof
// does complete across rounds; the cap is just a safety net.
constexpr int kIncrementalRounds = 64;

// xorshift64: deterministic, seed-stable across platforms.
uint64_t RngState;
uint64_t nextRand() {
  RngState ^= RngState << 13;
  RngState ^= RngState >> 7;
  RngState ^= RngState << 17;
  return RngState;
}

template <typename SolverT>
void buildRandom3Sat(SolverT &S, uint64_t Seed) {
  RngState = Seed * 0x9e3779b97f4a7c15ULL + 1;
  for (int I = 0; I < kStressVars; ++I)
    S.newVar();
  for (int C = 0; C < kStressClauses; ++C) {
    std::vector<Lit> Cl;
    for (int K = 0; K < 3; ++K) {
      Var V = static_cast<Var>(nextRand() % kStressVars);
      Cl.push_back(mkLit(V, (nextRand() & 1) != 0));
    }
    S.addClause(std::move(Cl));
  }
}

struct StressSide {
  double WallSeconds = 0;
  int Retired = 0; ///< Instances whose proof completed.
  uint64_t Rounds = 0;
  uint64_t Conflicts = 0;
  uint64_t Races = 0;
  uint64_t UnsatWins = 0;
  bool Sound = true; ///< Every completed proof was Unsat.
};

/// The off side under rebuild-the-world refinement: every revival round
/// replays the formula into a fresh solver (exactly what retireEncoding +
/// makeEncoding do after a destructive database change) and re-attempts
/// the proof under the episode budget. Learning never accumulates.
StressSide runOffRebuild() {
  StressSide Out;
  WallTimer W;
  for (uint64_t Seed : kStressSeeds) {
    for (int Round = 0; Round < kRebuildRounds; ++Round) {
      Solver S;
      buildRandom3Sat(S, Seed);
      S.setConflictBudget(kEpisodeBudget);
      SolveResult R = S.solve();
      ++Out.Rounds;
      Out.Conflicts += S.stats().Conflicts;
      if (R != SolveResult::Unknown) {
        ++Out.Retired;
        Out.Sound &= R == SolveResult::Unsat;
        break;
      }
    }
  }
  Out.WallSeconds = W.seconds();
  return Out;
}

/// The off side under incremental refinement: one solver per instance,
/// re-solved every revival round with the budget reset. Learned clauses
/// persist, so the proof eventually completes - the waste is the round
/// overhead and the dormancy-revival churn in between.
StressSide runOffIncremental() {
  StressSide Out;
  WallTimer W;
  for (uint64_t Seed : kStressSeeds) {
    Solver S;
    buildRandom3Sat(S, Seed);
    for (int Round = 0; Round < kIncrementalRounds; ++Round) {
      S.setConflictBudget(kEpisodeBudget);
      SolveResult R = S.solve();
      ++Out.Rounds;
      if (R != SolveResult::Unknown) {
        ++Out.Retired;
        Out.Sound &= R == SolveResult::Unsat;
        break;
      }
    }
    Out.Conflicts += S.stats().Conflicts;
  }
  Out.WallSeconds = W.seconds();
  return Out;
}

/// The on side: the identical episode through the portfolio. Member 0
/// trips the same budget, the racers launch, and a helper's 64x-budget
/// proof retires the instance in the first round - no revival ever
/// re-solves it, because an Unsat proof survives destructive changes.
StressSide runOnPortfolio() {
  StressSide Out;
  WallTimer W;
  for (uint64_t Seed : kStressSeeds) {
    Portfolio P;
    P.configure(true, "");
    buildRandom3Sat(P, Seed);
    P.setConflictBudget(kEpisodeBudget);
    SolveResult R = P.solve();
    ++Out.Rounds;
    Out.Conflicts += P.stats().Conflicts;
    Out.Races += P.portfolioStats().Races;
    Out.UnsatWins += P.portfolioStats().UnsatWins;
    if (R != SolveResult::Unknown) {
      ++Out.Retired;
      Out.Sound &= R == SolveResult::Unsat;
    }
  }
  Out.WallSeconds = W.seconds();
  return Out;
}

/// Byte-identical program streams: same record count, and per record the
/// same rendered source and verdict in the same order.
bool sameStream(const RunResult &A, const RunResult &B) {
  const auto &RA = A.Db.records();
  const auto &RB = B.Db.records();
  if (RA.size() != RB.size() || A.Synthesized != B.Synthesized ||
      A.Rejected != B.Rejected || A.Executed != B.Executed)
    return false;
  for (size_t I = 0; I < RA.size(); ++I)
    if (RA[I].Source != RB[I].Source || RA[I].Verdict != RB[I].Verdict ||
        RA[I].Hash != RB[I].Hash)
      return false;
  return true;
}

} // namespace

int main() {
  Session S;
  double Budget = envBudget("SYRUST_BUDGET", 120.0);
  int Seeds = static_cast<int>(envBudget("SYRUST_SEEDS", 2));
  banner("micro_portfolio",
         "solver-strategy portfolio: racing on vs single-solver off");

  BenchJson J("portfolio");
  bool StreamsIdentical = true;
  bool StressSound = true;

  // --- Part 1: hard-episode retirement stress (headline). ---------------
  std::printf("hard-episode retirement stress: %zu unsat 3-SAT episodes "
              "(%d vars, %d clauses), budget %" PRIu64
              " conflicts per attempt\n\n",
              sizeof(kStressSeeds) / sizeof(kStressSeeds[0]), kStressVars,
              kStressClauses, kEpisodeBudget);
  StressSide OffRebuild = runOffRebuild();
  StressSide OffIncr = runOffIncremental();
  StressSide On = runOnPortfolio();
  StressSound = OffRebuild.Sound && OffIncr.Sound && On.Sound;
  int Instances = static_cast<int>(sizeof(kStressSeeds) /
                                   sizeof(kStressSeeds[0]));
  if (On.Retired != Instances || On.UnsatWins != On.Races ||
      On.Races != static_cast<uint64_t>(Instances)) {
    StressSound = false;
    std::fprintf(stderr, "FAIL: portfolio retired %d/%d stress episodes "
                         "(%" PRIu64 " races, %" PRIu64 " unsat wins)\n",
                 On.Retired, Instances, On.Races, On.UnsatWins);
  }

  // "Conflicts" for the portfolio row counts member 0 only - helper work
  // is off the books by design, exactly as the emitted stats contract
  // promises (stats() must match the portfolio-off run).
  Table TS({"Side", "Wall s", "Retired", "Rounds", "Conflicts", "Races"});
  auto StressRow = [&](const char *Name, const StressSide &Side) {
    TS.addRow({Name, format("%.4f", Side.WallSeconds),
               format("%d/%d", Side.Retired, Instances),
               format("%" PRIu64, Side.Rounds),
               format("%" PRIu64, Side.Conflicts),
               format("%" PRIu64, Side.Races)});
  };
  StressRow("off, rebuild revivals", OffRebuild);
  StressRow("off, incremental revivals", OffIncr);
  StressRow("on, portfolio race", On);
  std::printf("%s\n", TS.render().c_str());

  double StressSpeedup =
      On.WallSeconds > 0 ? OffRebuild.WallSeconds / On.WallSeconds : 0;
  std::printf("rebuild-revival retirement wall: %.4f s off (%d/%d proofs "
              "ever finish, so this is a lower bound at %d revivals) vs "
              "%.4f s on (%d/%d) -> >= x%.2f solve-wall win, %.1fx fewer "
              "solve rounds\n\n",
              OffRebuild.WallSeconds, OffRebuild.Retired, Instances,
              kRebuildRounds, On.WallSeconds, On.Retired, Instances,
              StressSpeedup,
              On.Rounds > 0 ? static_cast<double>(OffRebuild.Rounds) /
                                  static_cast<double>(On.Rounds)
                            : 0.0);

  J.meta("stress_instances", json::Value::integer(Instances));
  J.meta("stress_episode_budget",
         json::Value::integer(static_cast<int64_t>(kEpisodeBudget)));
  J.meta("stress_rebuild_rounds", json::Value::integer(kRebuildRounds));
  J.meta("stress_solve_wall_seconds_off_rebuild",
         json::Value::number(OffRebuild.WallSeconds));
  J.meta("stress_solve_wall_seconds_off_incremental",
         json::Value::number(OffIncr.WallSeconds));
  J.meta("stress_solve_wall_seconds_on",
         json::Value::number(On.WallSeconds));
  J.meta("stress_retired_off_rebuild",
         json::Value::integer(OffRebuild.Retired));
  J.meta("stress_retired_on", json::Value::integer(On.Retired));
  // The off side never completes its proofs, so its wall is a lower
  // bound at the revival cap and this ratio is ">= x", not "= x".
  J.meta("stress_solve_wall_speedup_lower_bound",
         json::Value::number(StressSpeedup));
  J.meta("stress_solve_rounds_off_rebuild",
         json::Value::integer(static_cast<int64_t>(OffRebuild.Rounds)));
  J.meta("stress_solve_rounds_on",
         json::Value::integer(static_cast<int64_t>(On.Rounds)));
  J.meta("stress_sound", json::Value::boolean(StressSound));
  J.meta("hardware_concurrency",
         json::Value::integer(static_cast<int64_t>(
             std::thread::hardware_concurrency())));

  // --- Part 2: the two slowest library models, on vs off. ---------------
  std::printf("library models (two slowest in BENCH_compat.json): %.0f "
              "simulated seconds per run, %d seeds per crate\n\n",
              Budget, Seeds);
  const char *Crates[] = {"crossbeam", "smallvec"};
  // 0 = the driver's default solve budget; the tight budget forces
  // budget-trip episodes so the race path runs end to end in production
  // code, where the stream-identity contract matters most.
  const uint64_t Budgets[] = {0, 10};
  J.meta("budget_sim_seconds", json::Value::number(Budget));
  J.meta("seeds_per_crate", json::Value::integer(Seeds));

  Table T({"Library", "Seed", "Solve budget", "Solve s (off)",
           "Solve s (on)", "Races", "Unsat wins", "Stream"});
  double LibOffWall = 0, LibOnWall = 0;

  for (const char *Crate : Crates) {
    for (int I = 0; I < Seeds; ++I) {
      for (uint64_t SolveBudget : Budgets) {
        RunConfig OffC;
        OffC.BudgetSeconds = Budget;
        OffC.Seed = 2021 + static_cast<uint64_t>(I);
        OffC.SolveConflictBudget = SolveBudget;
        OffC.RecordTests = 100000; // Retain the full stream for cmp.
        RunConfig OnC = OffC;
        OnC.Portfolio = true;

        WallTimer WOff;
        RunResult ROff = S.runOne(Crate, OffC);
        double HostOff = WOff.seconds();
        WallTimer WOn;
        RunResult ROn = S.runOne(Crate, OnC);
        double HostOn = WOn.seconds();

        bool Same = sameStream(ROff, ROn);
        if (!Same) {
          StreamsIdentical = false;
          std::fprintf(stderr,
                       "FAIL: %s seed %d budget %" PRIu64
                       " diverged with the portfolio on\n",
                       Crate, I, SolveBudget);
        }

        std::string BudgetTag =
            SolveBudget == 0 ? "default" : std::to_string(SolveBudget);
        std::string Label = std::string(Crate) + "/seed" +
                            std::to_string(2021 + I) + "/budget-" +
                            BudgetTag;
        J.addRun(Label + "/portfolio-off", ROff, HostOff);
        J.addRun(Label + "/portfolio-on", ROn, HostOn);
        LibOffWall += ROff.Synth.SolveSeconds;
        LibOnWall += ROn.Synth.SolveSeconds;

        T.addRow({Crate, std::to_string(2021 + I), BudgetTag,
                  format("%.4f", ROff.Synth.SolveSeconds),
                  format("%.4f", ROn.Synth.SolveSeconds),
                  format("%" PRIu64, ROn.Synth.PortfolioRaces),
                  format("%" PRIu64, ROn.Synth.PortfolioUnsatWins),
                  Same ? "identical" : "DIVERGED"});
      }
    }
  }

  J.meta("library_solve_wall_seconds_off",
         json::Value::number(LibOffWall));
  J.meta("library_solve_wall_seconds_on", json::Value::number(LibOnWall));
  J.meta("streams_identical", json::Value::boolean(StreamsIdentical));

  std::printf("%s\n", T.render().c_str());
  std::printf("stress retirement solve wall: %.4f s off (lower bound, "
              "proofs never finish) -> %.4f s on (>= x%.2f)\n",
              OffRebuild.WallSeconds, On.WallSeconds, StressSpeedup);
  std::printf("library solve wall: %.4f s off, %.4f s on (parity "
              "expected: laptop-scale episodes rarely trip the budget)\n",
              LibOffWall, LibOnWall);
  std::printf("program streams identical: %s\n",
              StreamsIdentical ? "yes" : "NO - BUG");
  J.write();
  return StreamsIdentical && StressSound ? 0 : 1;
}
