//===--- fig9_rq2_semantic_ablation.cpp - Reproduce Figure 9 (RQ2) --------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Reproduces Figure 9: SyRust with the Section 4.4 semantic-awareness
/// constraints turned off, on the two bug libraries the paper selected
/// (crossbeam *2 and bitvec *3). Reports time-to-bug inflation, the
/// explosion in rejected test cases (dominated by Lifetime&Ownership, with
/// ownership >> borrowing), and the cumulative error-rate curves of the
/// figure's top row.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "core/Session.h"
#include "report/Table.h"
#include "support/StringUtils.h"

using namespace syrust;
using namespace syrust::bench;
using namespace syrust::core;
using namespace syrust::crates;
using namespace syrust::report;
using namespace syrust::rustsim;

namespace {

void printCurves(const char *Title, const RunResult &Base,
                 const RunResult &Ablated) {
  std::printf("%s: cumulative rejection rate over time (%% of test cases "
              "rejected so far)\n", Title);
  Table T({"t (s)", "baseline %", "ablated %", "ablated type %",
           "ablated L&O %", "ablated misc %"});
  size_t N = std::min(Base.Curve.size(), Ablated.Curve.size());
  size_t Step = N > 12 ? N / 12 : 1;
  for (size_t I = 0; I < N; I += Step) {
    const CurvePoint &B = Base.Curve[I];
    const CurvePoint &A = Ablated.Curve[I];
    auto Rate = [](uint64_t Rej, uint64_t Syn) {
      return Syn == 0 ? 0.0 : 100.0 * static_cast<double>(Rej) /
                                  static_cast<double>(Syn);
    };
    auto Share = [](uint64_t Part, uint64_t Rej) {
      return Rej == 0 ? 0.0 : 100.0 * static_cast<double>(Part) /
                                  static_cast<double>(Rej);
    };
    T.addRow({format("%.0f", A.AtSeconds),
              format("%.3f", Rate(B.Rejected, B.Synthesized)),
              format("%.3f", Rate(A.Rejected, A.Synthesized)),
              format("%.1f", Share(A.TypeErrors, A.Rejected)),
              format("%.1f", Share(A.LifetimeErrors, A.Rejected)),
              format("%.1f", Share(A.MiscErrors, A.Rejected))});
  }
  std::printf("%s\n", T.render().c_str());
}

} // namespace

int main() {
  core::Session S;
  double Budget = envBudget("SYRUST_BUDGET", 36000.0);
  banner("Figure 9",
         "RQ2 - semantic awareness (Section 4.4) turned off");

  Table Summary({"Bug", "Lines Found", "Time to Discovery (s)",
                 "Increase in # Errors", "Increase in # L&O Errors",
                 "Ownership Errors", "Borrowing Errors"});
  BenchJson J("fig9_rq2_semantic_ablation");
  J.meta("budget_sim_seconds", json::Value::number(Budget));

  for (const char *Name : {"crossbeam", "bitvec"}) {
    const CrateSpec *Spec = findCrate(Name);
    RunConfig Base;
    Base.BudgetSeconds = Budget;
    RunConfig Ablation = Base;
    Ablation.SemanticAware = false;

    WallTimer WBase;
    RunResult RBase = S.runOne(*Spec, Base);
    J.addRun(std::string(Name) + "/base", RBase, WBase.seconds());
    WallTimer WAbl;
    RunResult RAbl = S.runOne(*Spec, Ablation);
    J.addRun(std::string(Name) + "/no-semantic", RAbl, WAbl.seconds());

    auto Cat = [](const RunResult &R, ErrorCategory C) {
      auto It = R.ByCategory.find(C);
      return It == R.ByCategory.end() ? uint64_t{0} : It->second;
    };
    auto Det = [](const RunResult &R, ErrorDetail D) {
      auto It = R.ByDetail.find(D);
      return It == R.ByDetail.end() ? uint64_t{0} : It->second;
    };
    uint64_t LoBase = Cat(RBase, ErrorCategory::LifetimeOwnership);
    uint64_t LoAbl = Cat(RAbl, ErrorCategory::LifetimeOwnership);
    uint64_t Own = Det(RAbl, ErrorDetail::Ownership);
    uint64_t Borrow = Det(RAbl, ErrorDetail::Borrowing) +
                      Det(RAbl, ErrorDetail::AnonLifetime);
    double OwnShare =
        Own + Borrow == 0
            ? 0.0
            : 100.0 * static_cast<double>(Own) /
                  static_cast<double>(Own + Borrow);
    std::string TimeStr =
        RAbl.BugFound
            ? format("%.1f (x%.2f)", RAbl.TimeToBug,
                     RBase.BugFound && RBase.TimeToBug > 0
                         ? RAbl.TimeToBug / RBase.TimeToBug
                         : 0.0)
            : "Not Found";
    std::string ErrIncrease =
        RBase.Rejected == 0
            ? format("%llu (0 -> %llu)",
                     static_cast<unsigned long long>(RAbl.Rejected),
                     static_cast<unsigned long long>(RAbl.Rejected))
            : format("%llu (x%.2f)",
                     static_cast<unsigned long long>(RAbl.Rejected),
                     static_cast<double>(RAbl.Rejected) /
                         static_cast<double>(RBase.Rejected));
    std::string LoIncrease =
        LoBase == 0 ? format("%llu (0 -> %llu)",
                             static_cast<unsigned long long>(LoAbl),
                             static_cast<unsigned long long>(LoAbl))
                    : format("%llu (x%.2f)",
                             static_cast<unsigned long long>(LoAbl),
                             static_cast<double>(LoAbl) /
                                 static_cast<double>(LoBase));
    Summary.addRow({std::string(Spec->Bug->Label) + " (" + Name + ")",
                    RAbl.BugFound ? fmtCount(static_cast<uint64_t>(
                                        RAbl.BugLines))
                                  : "-",
                    TimeStr, ErrIncrease, LoIncrease,
                    format("%.2f %%", OwnShare),
                    format("%.2f %%", 100.0 - OwnShare)});

    printCurves(Name, RBase, RAbl);
  }

  std::printf("%s\n", Summary.render().c_str());
  std::printf("Baseline = fully featured SyRust on the same budget.\n");
  J.write();
  return 0;
}
