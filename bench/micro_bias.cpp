//===--- micro_bias.cpp - Coverage-guided enumeration bias A/B bench ------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// A/B benchmark for --bias-coverage: at an equal simulated budget, do
/// biased runs reach more API-dependency-graph edge coverage than the
/// unbiased baseline?
///
/// Both sides run interleaved (the biased episode leg replaces the
/// round-robin length rotation, which only exists in interleaved mode),
/// so the one knob under test is RunConfig::BiasCoverage: coverage-
/// weighted API selection at run start plus yield-weighted length draws
/// during enumeration. Per crate, edge coverage is summed over a seed
/// sweep on each side; the bench fails unless the biased side is
/// strictly higher on at least two crates and never loses overall. It
/// also replays one biased cell to verify the per-cell determinism
/// contract (a fixed (crate, seed) is byte-identical run to run).
///
/// Writes BENCH_bias.json. Scale with SYRUST_BUDGET (simulated seconds
/// per run, default 120) and SYRUST_SEEDS (seeds per crate, default 3).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "core/ResultJson.h"
#include "core/Session.h"
#include "report/Table.h"
#include "support/StringUtils.h"

#include <cinttypes>
#include <string>
#include <vector>

using namespace syrust;
using namespace syrust::bench;
using namespace syrust::core;
using namespace syrust::report;

int main() {
  Session S;
  double Budget = envBudget("SYRUST_BUDGET", 120.0);
  int Seeds = static_cast<int>(envBudget("SYRUST_SEEDS", 3));
  banner("micro_bias",
         "coverage-guided enumeration bias: --bias-coverage vs baseline");
  std::printf("%.0f simulated seconds per run, %d seeds per crate, both "
              "sides interleaved\n\n",
              Budget, Seeds);

  BenchJson J("bias");
  J.meta("budget_sim_seconds", json::Value::number(Budget));
  J.meta("seeds_per_crate", json::Value::integer(Seeds));
  J.meta("num_apis", json::Value::integer(10));

  const char *Crates[] = {"slab", "smallvec", "hashbrown", "bytes"};
  Table T({"Library", "Edges total", "Edges (biased)", "Edges (base)",
           "Delta", "Bias picks"});

  int CratesWon = 0, CratesLost = 0;
  bool Deterministic = true;
  uint64_t TotalBiased = 0, TotalBase = 0;
  json::Value PerCrate = json::Value::array();

  for (const char *Crate : Crates) {
    uint64_t BiasedEdges = 0, BaseEdges = 0, EdgesTotal = 0, Picks = 0;
    for (int I = 0; I < Seeds; ++I) {
      RunConfig BaseC;
      BaseC.BudgetSeconds = Budget;
      BaseC.Seed = 2021 + static_cast<uint64_t>(I);
      BaseC.InterleaveLengths = true;
      // A selective API budget on BOTH sides: the crate models carry
      // 12-18 APIs, so at the paper's default of 15 nearly everything
      // is selected and the selection leg can only shuffle which one
      // or two APIs drop. At 10 the subset choice genuinely matters -
      // a uniform draw regularly strands a type family with no
      // producer, which is exactly what the connectivity bias
      // prevents.
      BaseC.NumApis = 10;
      RunConfig BiasC = BaseC;
      BiasC.BiasCoverage = true;

      WallTimer WBias;
      RunResult RBias = S.runOne(Crate, BiasC);
      double HostBias = WBias.seconds();
      WallTimer WBase;
      RunResult RBase = S.runOne(Crate, BaseC);
      double HostBase = WBase.seconds();

      if (I == 0) {
        // Per-cell determinism: the same biased cell replays
        // byte-identically (document form, wall times stripped).
        RunResult Again = S.runOne(Crate, BiasC);
        if (resultToJson(RBias, {false}).dump() !=
            resultToJson(Again, {false}).dump()) {
          Deterministic = false;
          std::fprintf(stderr,
                       "FAIL: %s biased replay diverged (seed %" PRIu64
                       ")\n",
                       Crate, BiasC.Seed);
        }
      }

      BiasedEdges += RBias.ApiCoverage.edgesCovered();
      BaseEdges += RBase.ApiCoverage.edgesCovered();
      EdgesTotal = RBias.ApiCoverage.EdgesTotal;
      Picks += RBias.Synth.BiasPicks;

      std::string Label =
          std::string(Crate) + "/seed" + std::to_string(2021 + I);
      J.addRun(Label + "/biased", RBias, HostBias);
      J.addRun(Label + "/base", RBase, HostBase);
    }
    TotalBiased += BiasedEdges;
    TotalBase += BaseEdges;
    if (BiasedEdges > BaseEdges)
      ++CratesWon;
    else if (BiasedEdges < BaseEdges)
      ++CratesLost;
    T.addRow({Crate, format("%" PRIu64, EdgesTotal),
              format("%" PRIu64, BiasedEdges),
              format("%" PRIu64, BaseEdges),
              format("%+" PRId64, static_cast<int64_t>(BiasedEdges) -
                                      static_cast<int64_t>(BaseEdges)),
              format("%" PRIu64, Picks)});
    json::Value E = json::Value::object();
    E.set("crate", json::Value::string(Crate));
    E.set("edges_total",
          json::Value::integer(static_cast<int64_t>(EdgesTotal)));
    E.set("edges_covered_biased",
          json::Value::integer(static_cast<int64_t>(BiasedEdges)));
    E.set("edges_covered_base",
          json::Value::integer(static_cast<int64_t>(BaseEdges)));
    E.set("bias_picks", json::Value::integer(static_cast<int64_t>(Picks)));
    PerCrate.push(std::move(E));
  }

  J.meta("per_crate_edge_coverage", std::move(PerCrate));
  J.meta("edges_covered_biased_total",
         json::Value::integer(static_cast<int64_t>(TotalBiased)));
  J.meta("edges_covered_base_total",
         json::Value::integer(static_cast<int64_t>(TotalBase)));
  J.meta("crates_biased_strictly_higher", json::Value::integer(CratesWon));
  J.meta("crates_biased_strictly_lower", json::Value::integer(CratesLost));
  J.meta("deterministic_replay", json::Value::boolean(Deterministic));

  std::printf("%s\n", T.render().c_str());
  std::printf("edge coverage at equal budget: %" PRIu64 " biased vs %" PRIu64
              " base (summed over crates x seeds)\n",
              TotalBiased, TotalBase);
  std::printf("crates strictly higher with bias: %d of %zu (lost %d)\n",
              CratesWon, sizeof(Crates) / sizeof(Crates[0]), CratesLost);
  std::printf("biased replay deterministic: %s\n",
              Deterministic ? "yes" : "NO - BUG");
  J.write();

  // The acceptance bar: strictly higher edge coverage on >= 2 crates,
  // no overall regression, and deterministic replay.
  bool Pass = Deterministic && CratesWon >= 2 && TotalBiased > TotalBase;
  if (!Pass)
    std::fprintf(stderr, "FAIL: bias did not clear the acceptance bar\n");
  return Pass ? 0 : 1;
}
