//===--- fig12_library_table.cpp - Reproduce Figure 12 (appendix A) -------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Reproduces the appendix library inventory: category, downloads,
/// polymorphism, tested subcomponent, and revision hash for all 30
/// libraries, in the paper's order.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "crates/CrateRegistry.h"
#include "report/Table.h"

using namespace syrust::bench;
using namespace syrust::crates;
using namespace syrust::report;

int main() {
  banner("Figure 12", "libraries selected from crates.io");
  Table T({"Library Name", "Cat.", "Total Downloads", "Polymorphism",
           "Subcomponent", "Rev. Hash"});
  for (const CrateSpec &Spec : allCrates()) {
    T.addRow({Spec.Info.Name, Spec.Info.Category,
              fmtCount(Spec.Info.Downloads),
              Spec.Info.Polymorphic ? "Yes" : "No",
              Spec.Info.Subcomponent, Spec.Info.RevHash});
  }
  std::printf("%s\n", T.render().c_str());
  std::printf("Excluded from synthesis (closure-based, Section 7.1): ");
  bool First = true;
  for (const CrateSpec &Spec : allCrates()) {
    if (Spec.Info.SupportsSynthesis)
      continue;
    std::printf("%s%s", First ? "" : ", ", Spec.Info.Name.c_str());
    First = false;
  }
  std::printf("\n");
  return 0;
}
