//===--- fig12_library_table.cpp - Reproduce Figure 12 (appendix A) -------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Reproduces the appendix library inventory: category, downloads,
/// polymorphism, tested subcomponent, and revision hash for all 30
/// libraries, in the paper's order — and exercises every synthesizable
/// model the way the paper did: as one campaign fanned across a worker
/// pool (Section 6.2 ran 10-hour campaigns on a 64-container cluster;
/// SYRUST_JOBS picks the pool width here, SYRUST_BUDGET the simulated
/// budget per library). The per-library columns on the right come from
/// the pooled run; the table is byte-identical for any SYRUST_JOBS.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "campaign/CampaignRunner.h"
#include "report/Table.h"

#include <map>
#include <thread>

using namespace syrust;
using namespace syrust::bench;
using namespace syrust::campaign;
using namespace syrust::core;
using namespace syrust::crates;
using namespace syrust::report;

int main() {
  Session S;
  double Budget = envBudget("SYRUST_BUDGET", 60.0);
  unsigned DefaultJobs = std::thread::hardware_concurrency();
  int Jobs = static_cast<int>(
      envBudget("SYRUST_JOBS", DefaultJobs ? DefaultJobs : 1));
  banner("Figure 12", "libraries selected from crates.io");
  std::printf("campaign: %.0f simulated seconds per library on %d pool "
              "workers\n\n",
              Budget, Jobs);

  CampaignSpec Spec;
  Spec.Crates = S.supportedCrates();
  Spec.Base.BudgetSeconds = Budget;
  Spec.Jobs = Jobs;
  std::vector<std::string> Errors = Spec.validate(S);
  for (const std::string &E : Errors)
    std::fprintf(stderr, "fig12: %s\n", E.c_str());
  if (!Errors.empty())
    return 1;
  bench::BenchJson J("fig12_library_table");
  J.meta("budget_sim_seconds", json::Value::number(Budget));
  J.meta("jobs", json::Value::integer(Jobs));
  bench::WallTimer Campaign;
  CampaignResult R = CampaignRunner(S, Spec).run();
  J.meta("campaign_wall_seconds", json::Value::number(Campaign.seconds()));
  std::map<std::string, const RunResult *> ByCrate;
  for (const CampaignJobResult &JR : R.Jobs) {
    ByCrate[JR.Job.Crate] = &JR.Result;
    J.addRun(JR.Job.Crate, JR.Result, 0.0);
  }

  Table T({"Library Name", "Cat.", "Total Downloads", "Polymorphism",
           "Subcomponent", "Rev. Hash", "# Synthesized", "Bug"});
  for (const CrateSpec &Spec : allCrates()) {
    const RunResult *Res = ByCrate.count(Spec.Info.Name)
                               ? ByCrate[Spec.Info.Name]
                               : nullptr;
    T.addRow({Spec.Info.Name, Spec.Info.Category,
              fmtCount(Spec.Info.Downloads),
              Spec.Info.Polymorphic ? "Yes" : "No",
              Spec.Info.Subcomponent, Spec.Info.RevHash,
              Res ? fmtCount(Res->Synthesized) : "-",
              Res ? (Res->BugFound ? "yes" : "-") : "-"});
  }
  std::printf("%s\n", T.render().c_str());
  std::printf("campaign totals: %llu synthesized, %llu executed, %llu "
              "libraries flagged buggy\n",
              static_cast<unsigned long long>(R.Totals.Synthesized),
              static_cast<unsigned long long>(R.Totals.Executed),
              static_cast<unsigned long long>(R.Totals.BugsFound));
  std::printf("Excluded from synthesis (closure-based, Section 7.1): ");
  bool First = true;
  for (const CrateSpec &Spec : allCrates()) {
    if (Spec.Info.SupportsSynthesis)
      continue;
    std::printf("%s%s", First ? "" : ", ", Spec.Info.Name.c_str());
    First = false;
  }
  std::printf("\n");
  J.write();
  return 0;
}
