//===--- BenchCommon.h - Shared helpers for the evaluation benches --------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Budget scaling for the figure-reproduction harnesses. The paper ran 10
/// hours per library on a 4-machine cluster; the default simulated budgets
/// reproduce the same table *shapes* in seconds of real time. Set
/// SYRUST_BUDGET (simulated seconds per library) to scale any bench up.
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_BENCH_BENCHCOMMON_H
#define SYRUST_BENCH_BENCHCOMMON_H

#include <cstdio>
#include <cstdlib>
#include <string>

namespace syrust::bench {

/// Reads a positive double from the environment, falling back to \p Dflt.
inline double envBudget(const char *Name, double Dflt) {
  const char *Val = std::getenv(Name);
  if (!Val)
    return Dflt;
  double Parsed = std::atof(Val);
  return Parsed > 0 ? Parsed : Dflt;
}

/// Prints a figure banner in a uniform style.
inline void banner(const char *Figure, const char *Caption) {
  std::printf("==============================================================="
              "=========\n");
  std::printf("%s - %s\n", Figure, Caption);
  std::printf("==============================================================="
              "=========\n");
}

} // namespace syrust::bench

#endif // SYRUST_BENCH_BENCHCOMMON_H
