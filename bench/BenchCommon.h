//===--- BenchCommon.h - Shared helpers for the evaluation benches --------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Budget scaling for the figure-reproduction harnesses. The paper ran 10
/// hours per library on a 4-machine cluster; the default simulated budgets
/// reproduce the same table *shapes* in seconds of real time. Set
/// SYRUST_BUDGET (simulated seconds per library) to scale any bench up.
///
/// Every figure bench also writes a machine-readable companion document,
/// `BENCH_<name>.json`, with per-run host wall time, the pipeline's
/// per-stage wall breakdown (encoding build / solver), compat-cache hit
/// rates, and solver conflict counts - so CI can track throughput without
/// scraping the human-readable tables.
///
//===----------------------------------------------------------------------===//

#ifndef SYRUST_BENCH_BENCHCOMMON_H
#define SYRUST_BENCH_BENCHCOMMON_H

#include "core/SyRustDriver.h"
#include "support/Json.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

namespace syrust::bench {

/// Reads a positive double from the environment, falling back to \p Dflt.
inline double envBudget(const char *Name, double Dflt) {
  const char *Val = std::getenv(Name);
  if (!Val)
    return Dflt;
  double Parsed = std::atof(Val);
  return Parsed > 0 ? Parsed : Dflt;
}

/// Prints a figure banner in a uniform style.
inline void banner(const char *Figure, const char *Caption) {
  std::printf("==============================================================="
              "=========\n");
  std::printf("%s - %s\n", Figure, Caption);
  std::printf("==============================================================="
              "=========\n");
}

/// Host wall-clock stopwatch (the benches' tables use simulated time;
/// the BENCH_*.json throughput numbers use this).
class WallTimer {
public:
  WallTimer() : Start(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - Start)
        .count();
  }

private:
  std::chrono::steady_clock::time_point Start;
};

/// Accumulates one run entry per pipeline invocation and writes the
/// machine-readable `BENCH_<name>.json` companion document.
class BenchJson {
public:
  explicit BenchJson(std::string BenchName)
      : Name(std::move(BenchName)), Runs(json::Value::array()),
        Meta(json::Value::object()) {}

  /// Arbitrary top-level metadata (budget, variant names, speedups).
  void meta(const std::string &Key, json::Value V) {
    Meta.set(Key, std::move(V));
  }

  /// Records one run: \p HostSeconds is the run's host wall time, the
  /// per-stage breakdown and cache/solver counters come from \p R.
  void addRun(const std::string &Label, const core::RunResult &R,
              double HostSeconds) {
    json::Value E = json::Value::object();
    E.set("label", json::Value::string(Label));
    E.set("crate", json::Value::string(R.Crate));
    E.set("host_wall_seconds", json::Value::number(HostSeconds));
    E.set("build_wall_seconds", json::Value::number(R.Synth.BuildSeconds));
    E.set("solve_wall_seconds", json::Value::number(R.Synth.SolveSeconds));
    E.set("elapsed_sim_seconds", json::Value::number(R.ElapsedSeconds));
    E.set("synthesized",
          json::Value::integer(static_cast<int64_t>(R.Synthesized)));
    E.set("rejected",
          json::Value::integer(static_cast<int64_t>(R.Rejected)));
    E.set("executed",
          json::Value::integer(static_cast<int64_t>(R.Executed)));
    E.set("solver_conflicts", json::Value::integer(static_cast<int64_t>(
                                  R.Synth.SolverConflicts)));
    E.set("solver_propagations",
          json::Value::integer(
              static_cast<int64_t>(R.Synth.SolverPropagations)));
    uint64_t Hits = R.Synth.CompatHits + R.Synth.CompatBaseHits;
    uint64_t Probes = Hits + R.Synth.CompatMisses;
    E.set("compat_cache_hits",
          json::Value::integer(static_cast<int64_t>(R.Synth.CompatHits)));
    E.set("compat_cache_base_hits",
          json::Value::integer(
              static_cast<int64_t>(R.Synth.CompatBaseHits)));
    E.set("compat_cache_misses",
          json::Value::integer(
              static_cast<int64_t>(R.Synth.CompatMisses)));
    E.set("compat_cache_hit_rate",
          json::Value::number(
              Probes == 0 ? 0.0
                          : static_cast<double>(Hits) /
                                static_cast<double>(Probes)));
    Runs.push(std::move(E));
  }

  /// Writes `BENCH_<name>.json` in the working directory and reports the
  /// path on stdout. Returns false (with a stderr message) on I/O error.
  bool write() {
    json::Value Root = json::Value::object();
    Root.set("bench", json::Value::string(Name));
    Root.set("meta", std::move(Meta));
    Root.set("runs", std::move(Runs));
    std::string Path = "BENCH_" + Name + ".json";
    std::FILE *F = std::fopen(Path.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "warning: cannot write %s\n", Path.c_str());
      return false;
    }
    std::string Doc = Root.dump();
    std::fwrite(Doc.data(), 1, Doc.size(), F);
    std::fputc('\n', F);
    std::fclose(F);
    std::printf("machine-readable results: %s\n", Path.c_str());
    return true;
  }

private:
  std::string Name;
  json::Value Runs;
  json::Value Meta;
};

} // namespace syrust::bench

#endif // SYRUST_BENCH_BENCHCOMMON_H
