//===--- micro_compat.cpp - Compat kernel A/B microbench ------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// A/B benchmark for the memoized compatibility kernel, in two parts.
///
/// Part 1 (the headline number) is a refinement-heavy stress model built
/// for the probe workload the cache targets: deeply nested polymorphic
/// signatures (depth-kDepth generic spines), consumers whose slots share
/// a type variable (so every pairwise probe of Definition 2(3) walks the
/// full spine under a joint substitution), and rounds of database growth
/// under the rebuild-the-world refinement path - each rebuild re-asks the
/// complete probe workload over interned types, which is exactly what the
/// memo answers in O(1) after the first computation. Both sides run the
/// identical configuration; the only difference is SynthOptions::Compat.
///
/// Part 2 runs the real library models through core::Session with the
/// --no-compat-cache escape hatch as the off side. Shallow real-model
/// types make direct unification nearly free, so no speedup is claimed
/// here; this part exists to verify end-to-end stream identity (the cache
/// must change throughput, never results) and to report production hit
/// rates.
///
/// Writes BENCH_compat.json. Scale part 2 with SYRUST_BUDGET (simulated
/// seconds per run, default 120) and SYRUST_SEEDS (default 3).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "core/Session.h"
#include "report/Table.h"
#include "support/StringUtils.h"
#include "synth/Synthesizer.h"
#include "types/TypeParser.h"

#include <cinttypes>
#include <string>
#include <vector>

using namespace syrust;
using namespace syrust::bench;
using namespace syrust::core;
using namespace syrust::report;
using namespace syrust::synth;

namespace {

// Stress-model shape. Each layer nests the payload under three sibling
// generic branches, so a direct unification walks ~3^kDepth nodes (the
// interned type DAG stays small - interning shares subtrees - but the
// match recurses the tree) while a memo hit stays one pointer-pair hash.
// Nesting depth is ~4 levels per layer; keep kDepth*4 below unifyImpl's
// depth-32 defensive bound.
constexpr int kDepth = 6;
constexpr int kProducers = 20;
constexpr int kConsumers = 10;
constexpr int kRounds = 8;
constexpr int kPerRound = 8;
constexpr int kMaxLines = 3;

struct StressResult {
  double BuildSeconds = 0;
  uint64_t Emitted = 0;
  uint64_t Rebuilds = 0;
  std::vector<uint64_t> Hashes;
  types::CompatCache::Stats Cache;
};

std::string deep(std::string Core) {
  for (int D = 0; D < kDepth; ++D)
    Core = "Vec<(HashMap<String, Option<" + Core + ">>, Vec<" + Core +
           ">, Option<(" + Core + ", usize)>)>";
  return Core;
}

StressResult runStress(bool WithCache) {
  types::TypeArena Arena;
  types::TypeParser Parser(Arena, {"T"});
  types::TraitEnv Traits(Arena);
  api::ApiDatabase Db;
  auto Add = [&](const std::string &Name, std::vector<std::string> Ins,
                 const std::string &Out) {
    api::ApiSig Sig;
    Sig.Name = Name;
    for (const auto &I : Ins)
      Sig.Inputs.push_back(Parser.parse(I));
    Sig.Output = Parser.parse(Out);
    Db.add(std::move(Sig));
  };
  // Producers mint distinct deep concrete types from a Copy seed (a
  // consumable seed would die on the first call and cap programs at one
  // line); consumers take two of them under one shared variable, so each
  // candidate pair costs a joint full-spine unification when computed
  // directly.
  for (int I = 0; I < kProducers; ++I)
    Add("mk" + std::to_string(I), {"usize"},
        deep("Item" + std::to_string(I)));
  for (int I = 0; I < kConsumers; ++I)
    Add("use" + std::to_string(I), {deep("T"), deep("T")}, "usize");
  std::vector<program::TemplateInput> Inputs = {
      {"n", Parser.parse("usize")}};

  types::CompatCache Cache;
  SynthOptions Opts;
  // The rebuild-the-world refinement path: every database change tears
  // the encodings down and re-asks the whole probe workload. Interleaved
  // lengths keep one live encoding per length, so each round rebuilds
  // all of them, not just the shortest unexhausted one.
  Opts.IncrementalRefinement = false;
  Opts.InterleaveLengths = true;
  if (WithCache)
    Opts.Compat = &Cache;
  Synthesizer Synth(Arena, Traits, Db, Inputs, kMaxLines, Opts);

  StressResult R;
  for (int Round = 0; Round < kRounds; ++Round) {
    for (int K = 0; K < kPerRound; ++K) {
      auto P = Synth.next();
      if (!P.has_value())
        break;
      R.Hashes.push_back(P->hash());
    }
    Add("mk_r" + std::to_string(Round), {"usize"},
        deep("Round" + std::to_string(Round)));
    Synth.notifyDatabaseChanged();
  }
  R.BuildSeconds = Synth.stats().BuildSeconds;
  R.Emitted = Synth.stats().Emitted;
  R.Rebuilds = Synth.stats().Rebuilds;
  R.Cache = Cache.stats();
  return R;
}

} // namespace

int main() {
  Session S;
  double Budget = envBudget("SYRUST_BUDGET", 120.0);
  int Seeds = static_cast<int>(envBudget("SYRUST_SEEDS", 3));
  banner("micro_compat",
         "memoized compatibility kernel: cache on vs --no-compat-cache");

  BenchJson J("compat");
  bool StreamsIdentical = true;

  // --- Part 1: refinement-heavy deep-polymorphic stress (headline). -----
  std::printf("deep-polymorphic refinement stress: depth %d, %d producers, "
              "%d consumers, %d rounds\n\n",
              kDepth, kProducers, kConsumers, kRounds);
  StressResult On = runStress(true);
  StressResult Off = runStress(false);
  if (On.Hashes != Off.Hashes) {
    StreamsIdentical = false;
    std::fprintf(stderr, "FAIL: stress program stream diverged with the "
                         "cache on\n");
  }
  double StressSpeedup =
      On.BuildSeconds > 0 ? Off.BuildSeconds / On.BuildSeconds : 0;
  uint64_t StressHits = On.Cache.Hits + On.Cache.BaseHits;
  uint64_t StressProbes = StressHits + On.Cache.Misses;
  Table TS({"Workload", "Build s (cache)", "Build s (no cache)", "Speedup",
            "Hit Rate", "Rebuilds", "Programs"});
  TS.addRow({"deep-poly stress", format("%.4f", On.BuildSeconds),
             format("%.4f", Off.BuildSeconds),
             format("x%.2f", StressSpeedup),
             StressProbes > 0
                 ? format("%.1f %%", 100.0 * static_cast<double>(StressHits) /
                                         static_cast<double>(StressProbes))
                 : "-",
             format("%" PRIu64, On.Rebuilds),
             format("%" PRIu64, On.Emitted)});
  std::printf("%s\n", TS.render().c_str());

  J.meta("stress_depth", json::Value::integer(kDepth));
  J.meta("stress_rounds", json::Value::integer(kRounds));
  J.meta("stress_probes", json::Value::integer(
                              static_cast<int64_t>(StressProbes)));
  J.meta("stress_cache_hits",
         json::Value::integer(static_cast<int64_t>(StressHits)));
  J.meta("encoding_build_wall_seconds_cache_on",
         json::Value::number(On.BuildSeconds));
  J.meta("encoding_build_wall_seconds_cache_off",
         json::Value::number(Off.BuildSeconds));
  J.meta("encoding_build_speedup", json::Value::number(StressSpeedup));

  // --- Part 2: real library models through the escape hatch. ------------
  std::printf("library models: %.0f simulated seconds per run, %d seeds "
              "per crate\n\n",
              Budget, Seeds);
  const char *Crates[] = {"smallvec", "bitvec", "crossbeam", "hashbrown"};
  J.meta("budget_sim_seconds", json::Value::number(Budget));
  J.meta("seeds_per_crate", json::Value::integer(Seeds));

  Table T({"Library", "Seed", "Build s (cache)", "Build s (no cache)",
           "Speedup", "Hit Rate", "Programs"});
  double OnBuild = 0, OffBuild = 0, OnWall = 0, OffWall = 0;

  for (const char *Crate : Crates) {
    for (int I = 0; I < Seeds; ++I) {
      RunConfig OnC;
      OnC.BudgetSeconds = Budget;
      OnC.Seed = 2021 + static_cast<uint64_t>(I);
      RunConfig OffC = OnC;
      OffC.UseCompatCache = false;

      WallTimer WOn;
      RunResult ROn = S.runOne(Crate, OnC);
      double HostOn = WOn.seconds();
      WallTimer WOff;
      RunResult ROff = S.runOne(Crate, OffC);
      double HostOff = WOff.seconds();

      if (ROn.Synthesized != ROff.Synthesized ||
          ROn.Rejected != ROff.Rejected ||
          ROn.Executed != ROff.Executed) {
        StreamsIdentical = false;
        std::fprintf(stderr,
                     "FAIL: %s seed %d diverged with the cache on\n",
                     Crate, I);
      }

      std::string Label =
          std::string(Crate) + "/seed" + std::to_string(2021 + I);
      J.addRun(Label + "/cache-on", ROn, HostOn);
      J.addRun(Label + "/no-cache", ROff, HostOff);
      OnBuild += ROn.Synth.BuildSeconds;
      OffBuild += ROff.Synth.BuildSeconds;
      OnWall += HostOn;
      OffWall += HostOff;

      uint64_t Hits = ROn.Synth.CompatHits + ROn.Synth.CompatBaseHits;
      uint64_t Probes = Hits + ROn.Synth.CompatMisses;
      T.addRow({Crate, std::to_string(2021 + I),
                format("%.4f", ROn.Synth.BuildSeconds),
                format("%.4f", ROff.Synth.BuildSeconds),
                ROn.Synth.BuildSeconds > 0
                    ? format("x%.2f", ROff.Synth.BuildSeconds /
                                          ROn.Synth.BuildSeconds)
                    : "-",
                Probes > 0 ? format("%.1f %%", 100.0 *
                                                   static_cast<double>(
                                                       Hits) /
                                                   static_cast<double>(
                                                       Probes))
                           : "-",
                format("%" PRIu64, ROn.Synthesized)});
    }
  }

  double LibSpeedup = OnBuild > 0 ? OffBuild / OnBuild : 0;
  J.meta("library_build_wall_seconds_cache_on",
         json::Value::number(OnBuild));
  J.meta("library_build_wall_seconds_cache_off",
         json::Value::number(OffBuild));
  J.meta("library_build_speedup", json::Value::number(LibSpeedup));
  J.meta("host_wall_seconds_cache_on", json::Value::number(OnWall));
  J.meta("host_wall_seconds_cache_off", json::Value::number(OffWall));
  J.meta("streams_identical", json::Value::boolean(StreamsIdentical));

  std::printf("%s\n", T.render().c_str());
  std::printf("stress encoding-build wall time: %.4f s with cache, %.4f s "
              "without -> x%.2f speedup\n",
              On.BuildSeconds, Off.BuildSeconds, StressSpeedup);
  std::printf("library encoding-build wall time: %.4f s with cache, "
              "%.4f s without -> x%.2f\n",
              OnBuild, OffBuild, LibSpeedup);
  std::printf("program streams identical: %s\n",
              StreamsIdentical ? "yes" : "NO - BUG");
  J.write();
  return StreamsIdentical ? 0 : 1;
}
