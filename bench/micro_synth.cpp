//===--- micro_synth.cpp - google-benchmark microbenches for synthesis ----===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Backs the paper's Section 6.3 observation that "solving the constraint
/// formulas is quite fast": encoding construction and model enumeration
/// throughput on the running vector-library example, per program length,
/// plus the Rule 7 path-check post-processing rate.
///
//===----------------------------------------------------------------------===//

#include "crates/CrateRegistry.h"
#include "synth/Synthesizer.h"
#include "types/TypeParser.h"

#include "MicroMain.h"

#include <benchmark/benchmark.h>

using namespace syrust;
using namespace syrust::crates;
using namespace syrust::synth;

namespace {

void BM_EncodingBuild(benchmark::State &State) {
  auto Inst = findCrate("bitvec")->instantiate();
  for (auto _ : State) {
    Encoding Enc(Inst->Arena, Inst->Traits, Inst->Db, Inst->Inputs,
                 static_cast<int>(State.range(0)), SynthOptions{});
    benchmark::DoNotOptimize(Enc.numSatVars());
  }
}
BENCHMARK(BM_EncodingBuild)->DenseRange(1, 5);

void BM_EnumerateHundredPrograms(benchmark::State &State) {
  auto Inst = findCrate("bitvec")->instantiate();
  for (auto _ : State) {
    Synthesizer Synth(Inst->Arena, Inst->Traits, Inst->Db, Inst->Inputs,
                      static_cast<int>(State.range(0)), SynthOptions{});
    int Count = 0;
    while (Count < 100 && Synth.next().has_value())
      ++Count;
    benchmark::DoNotOptimize(Count);
  }
}
BENCHMARK(BM_EnumerateHundredPrograms)->Arg(3)->Arg(5);

void BM_PathCheck(benchmark::State &State) {
  auto Inst = findCrate("slab")->instantiate();
  Synthesizer Synth(Inst->Arena, Inst->Traits, Inst->Db, Inst->Inputs, 4,
                    SynthOptions{});
  std::vector<program::Program> Programs;
  while (Programs.size() < 200) {
    auto P = Synth.next();
    if (!P)
      break;
    Programs.push_back(*P);
  }
  for (auto _ : State) {
    int Ok = 0;
    for (const auto &P : Programs)
      Ok += Encoding::pathCheckOk(P, Inst->Db, Inst->Traits) ? 1 : 0;
    benchmark::DoNotOptimize(Ok);
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(Programs.size()));
}
BENCHMARK(BM_PathCheck);

void BM_FullPipelinePerTest(benchmark::State &State) {
  // Amortized cost of one synthesize+decode step on a real library model.
  auto Inst = findCrate("smallvec")->instantiate();
  Synthesizer Synth(Inst->Arena, Inst->Traits, Inst->Db, Inst->Inputs,
                    Inst->MaxLen, SynthOptions{});
  int64_t Produced = 0;
  for (auto _ : State) {
    auto P = Synth.next();
    if (!P.has_value()) {
      State.SkipWithError("space exhausted");
      break;
    }
    benchmark::DoNotOptimize(P->hash());
    ++Produced;
  }
  State.SetItemsProcessed(Produced);
}
BENCHMARK(BM_FullPipelinePerTest);

void BM_RefinementHeavySynthesis(benchmark::State &State) {
  // Refinement-heavy A/B: rounds of "emit a batch, then the database
  // grows". Arg 1 = incremental refinement (extend encodings in place,
  // blocking persists), Arg 0 = the historical rebuild-the-world path.
  // The duplicates_skipped counter is the tell: rebuilds make the solver
  // re-walk everything already emitted; the incremental path does not.
  bool Incremental = State.range(0) != 0;
  uint64_t Duplicates = 0;
  uint64_t Emitted = 0;
  for (auto _ : State) {
    types::TypeArena Arena;
    types::TypeParser Parser(Arena, {});
    types::TraitEnv Traits(Arena);
    api::ApiDatabase Db;
    api::addBuiltinApis(Db, Arena);
    auto Add = [&](const std::string &Name, std::vector<std::string> Ins,
                   const std::string &Out) {
      api::ApiSig Sig;
      Sig.Name = Name;
      for (const auto &I : Ins)
        Sig.Inputs.push_back(Parser.parse(I));
      Sig.Output = Parser.parse(Out);
      Db.add(std::move(Sig));
    };
    Add("f", {"String"}, "Token");
    Add("g", {"Token"}, "usize");
    Add("h", {"Vec<String>"}, "usize");
    std::vector<program::TemplateInput> Inputs = {
        {"s", Parser.parse("String")}, {"v", Parser.parse("Vec<String>")}};
    SynthOptions Opts;
    Opts.IncrementalRefinement = Incremental;
    Synthesizer Synth(Arena, Traits, Db, Inputs, /*MaxLines=*/3, Opts);
    for (int Round = 0; Round < 8; ++Round) {
      for (int K = 0; K < 10; ++K)
        if (!Synth.next().has_value())
          break;
      Add("r" + std::to_string(Round), {"usize"},
          "Out" + std::to_string(Round));
      Synth.notifyDatabaseChanged();
    }
    Duplicates += Synth.stats().DuplicatesSkipped;
    Emitted += Synth.stats().Emitted;
  }
  State.counters["duplicates_skipped"] = benchmark::Counter(
      static_cast<double>(Duplicates), benchmark::Counter::kAvgIterations);
  State.counters["emitted"] = benchmark::Counter(
      static_cast<double>(Emitted), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_RefinementHeavySynthesis)
    ->ArgName("incremental")
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

} // namespace

SYRUST_BENCHMARK_MAIN("micro_synth")
