//===--- fig7_bugs.cpp - Reproduce Figure 7 (and Figures 8/13) ------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Reproduces Figure 7: the four bugs, their kinds, the minimum number of
/// lines to induce, and the time to discovery; plus the bug-inducing
/// programs themselves (the paper's Figure 8 and appendix Figure 13).
///
/// Expected shape: bug kinds {memory leak, hanging pointer, UAF, OOB},
/// minimum lines {1, 3, 5, 4}, and *1 discovered nearly instantly while
/// the multi-call chains take orders of magnitude longer.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "core/Session.h"
#include "miri/Heap.h"
#include "report/Table.h"
#include "support/StringUtils.h"

using namespace syrust;
using namespace syrust::bench;
using namespace syrust::core;
using namespace syrust::crates;
using namespace syrust::report;

int main() {
  core::Session S;
  double Budget = envBudget("SYRUST_BUDGET", 36000.0);
  banner("Figure 7", "bugs caught by SyRust");

  Table T({"Bug", "Library", "Bug Type", "Min. Lines to Induce",
           "Lines Found", "Minimized", "Time to Discovery (s)",
           "Detected As"});
  std::vector<std::pair<std::string, std::string>> Programs;
  BenchJson J("fig7_bugs");
  J.meta("budget_sim_seconds", json::Value::number(Budget));

  for (const CrateSpec *Spec : buggyCrates()) {
    RunConfig Config;
    Config.BudgetSeconds = Budget;
    Config.StopOnFirstBug = true;
    Config.MinimizeBugs = true;
    WallTimer W;
    RunResult R = S.runOne(*Spec, Config);
    J.addRun(Spec->Bug->Label, R, W.seconds());
    if (!R.BugFound) {
      T.addRow({Spec->Bug->Label, Spec->Info.Name, Spec->Bug->BugType,
                fmtCount(static_cast<uint64_t>(Spec->Bug->MinLines)),
                "not found", "-", "-", "-"});
      continue;
    }
    T.addRow({Spec->Bug->Label, Spec->Info.Name, Spec->Bug->BugType,
              fmtCount(static_cast<uint64_t>(Spec->Bug->MinLines)),
              fmtCount(static_cast<uint64_t>(R.BugLines)),
              fmtCount(static_cast<uint64_t>(R.MinimizedLines)),
              format("%.2f", R.TimeToBug),
              miri::ubKindName(R.FirstBug.Kind)});
    Programs.emplace_back(Spec->Bug->Label + " (" + Spec->Info.Name +
                              "): " + R.FirstBug.Message,
                          R.MinimizedProgram.empty() ? R.BugProgram
                                                     : R.MinimizedProgram);
  }

  std::printf("%s\n", T.render().c_str());
  std::printf("Bug-inducing test cases (cf. paper Figures 8 and 13):\n\n");
  for (const auto &[Title, Source] : Programs)
    std::printf("--- %s\n%s\n", Title.c_str(), Source.c_str());
  J.write();
  return 0;
}
