//===--- fig11_coverage.cpp - Reproduce Figure 11 -------------------------===//
//
// Part of SyRust-CPP (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Reproduces Figure 11: line and branch coverage of the component under
/// test and of the whole library, for bitvec (BV) and crossbeam (CB),
/// under the three variants RQ1 (full SyRust), RQ2 (semantic awareness
/// off) and RQ3 (purely eager refinement). Also reports the coverage
/// saturation times discussed in Section 7.3.
///
/// Expected shape: RQ1 and RQ2 end at roughly the same coverage with RQ1
/// saturating earlier; RQ3 is far worse; whole-library coverage drops
/// much more for crossbeam (the facade crate is much larger than the
/// tested component).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "core/Session.h"
#include "report/Table.h"
#include "support/StringUtils.h"

using namespace syrust;
using namespace syrust::bench;
using namespace syrust::core;
using namespace syrust::crates;
using namespace syrust::report;

int main() {
  core::Session S;
  double Budget = envBudget("SYRUST_BUDGET", 6000.0);
  banner("Figure 11", "library and component coverage (BV/CB x RQ1-3)");

  Table T({"Library and RQ #", "Component Line", "Component Branch",
           "Library Line", "Library Branch", "Saturation (s)"});

  struct Variant {
    const char *Tag;
    bool Semantic;
    refine::RefinementMode Mode;
  };
  const Variant Variants[] = {
      {"RQ1", true, refine::RefinementMode::Hybrid},
      {"RQ2", false, refine::RefinementMode::Hybrid},
      {"RQ3", true, refine::RefinementMode::PurelyEager},
  };
  BenchJson J("fig11_coverage");
  J.meta("budget_sim_seconds", json::Value::number(Budget));

  for (const auto &[Name, Tag] :
       {std::pair<const char *, const char *>{"bitvec", "BV"},
        std::pair<const char *, const char *>{"crossbeam", "CB"}}) {
    const CrateSpec *Spec = findCrate(Name);
    for (const Variant &V : Variants) {
      RunConfig Config;
      Config.BudgetSeconds = Budget;
      Config.SemanticAware = V.Semantic;
      Config.Mode = V.Mode;
      if (V.Mode == refine::RefinementMode::PurelyEager)
        Config.EagerCap = 24;
      Config.SnapshotInterval = Budget / 40;
      WallTimer W;
      RunResult R = S.runOne(*Spec, Config);
      J.addRun(std::string(Name) + "/" + V.Tag, R, W.seconds());
      T.addRow({std::string(Tag) + " " + V.Tag,
                format("%.2f %%", R.Coverage.ComponentLine),
                format("%.2f %%", R.Coverage.ComponentBranch),
                format("%.2f %%", R.Coverage.LibraryLine),
                format("%.2f %%", R.Coverage.LibraryBranch),
                format("%.0f", R.CoverageSaturation)});
    }
  }

  std::printf("%s\n", T.render().c_str());
  std::printf("Saturation = simulated time of the last component-line "
              "coverage improvement (snapshots every %.0f s; the paper "
              "used 900 s intervals).\n",
              Budget / 40);
  J.write();
  return 0;
}
